package histogram

import (
	"math"

	"robustqo/internal/catalog"
	"robustqo/internal/expr"
)

// Estimate returns the selectivity a conventional optimizer would assign
// to pred over the (foreign-key) join of tables, combining per-column
// histogram estimates under the attribute value independence assumption
// and falling back to magic numbers for predicate shapes histograms
// cannot model (multi-column comparisons, arithmetic, substring matches).
//
// It never fails: unresolvable inputs degrade to magic constants, exactly
// as Section 3.5 describes real systems behaving. A nil predicate has
// selectivity 1.
func Estimate(c *Collection, cat *catalog.Catalog, tables []string, pred expr.Expr) float64 {
	e := &aviEstimator{c: c, cat: cat, tables: tables}
	sel := e.sel(pred)
	if sel < 0 {
		return 0
	}
	if sel > 1 {
		return 1
	}
	return sel
}

type aviEstimator struct {
	c      *Collection
	cat    *catalog.Catalog
	tables []string
}

func (e *aviEstimator) sel(p expr.Expr) float64 {
	switch n := p.(type) {
	case nil:
		return 1
	case expr.And:
		// The AVI assumption: multiply the marginals.
		s := 1.0
		for _, t := range n.Terms {
			s *= e.sel(t)
		}
		return s
	case expr.Or:
		// Independence again: P(a or b) = 1 - prod(1 - P).
		s := 1.0
		for _, t := range n.Terms {
			s *= 1 - e.sel(t)
		}
		return 1 - s
	case expr.Not:
		return 1 - e.sel(n.E)
	case expr.Between:
		col, ok := n.E.(expr.Col)
		lo, okLo := litValue(n.Lo)
		hi, okHi := litValue(n.Hi)
		if !ok || !okLo || !okHi {
			return MagicRange
		}
		h, found := e.histFor(col.Ref)
		if !found {
			return MagicRange
		}
		return h.SelRange(lo, hi)
	case expr.Cmp:
		return e.selCmp(n)
	case expr.In:
		col, ok := n.E.(expr.Col)
		if !ok {
			return MagicOther
		}
		h, found := e.histFor(col.Ref)
		if !found {
			// One magic-equality contribution per listed value, capped.
			s := MagicEq * float64(len(n.Vals))
			if s > 1 {
				s = 1
			}
			return s
		}
		s := 0.0
		for _, v := range n.Vals {
			if !v.Numeric() {
				continue
			}
			s += h.SelEq(v.AsFloat())
		}
		if s > 1 {
			s = 1
		}
		return s
	case expr.Contains:
		return MagicOther
	default:
		return MagicOther
	}
}

func (e *aviEstimator) selCmp(n expr.Cmp) float64 {
	col, okCol := n.L.(expr.Col)
	lit, okLit := litValue(n.R)
	op := n.Op
	if !okCol || !okLit {
		// Try the flipped orientation lit op col.
		if c2, ok2 := n.R.(expr.Col); ok2 {
			if v2, okv := litValue(n.L); okv {
				col, lit, okCol, okLit = c2, v2, true, true
				op = flipCmp(op)
			}
		}
	}
	if !okCol || !okLit {
		// Column-to-column or arithmetic comparison: magic numbers.
		if op == expr.EQ {
			return MagicEq
		}
		return MagicRange
	}
	h, found := e.histFor(col.Ref)
	if !found {
		if op == expr.EQ {
			return MagicEq
		}
		return MagicRange
	}
	const inf = math.MaxFloat64
	switch op {
	case expr.EQ:
		return h.SelEq(lit)
	case expr.NE:
		return 1 - h.SelEq(lit)
	case expr.LT:
		return h.SelRange(-inf, lit) - h.SelEq(lit)
	case expr.LE:
		return h.SelRange(-inf, lit)
	case expr.GT:
		return h.SelRange(lit, inf) - h.SelEq(lit)
	default: // GE
		return h.SelRange(lit, inf)
	}
}

func (e *aviEstimator) histFor(ref expr.ColumnRef) (*Histogram, bool) {
	if ref.Table != "" {
		return e.c.Lookup(ref.Table, ref.Column)
	}
	// Unqualified: unique match across the query's tables.
	var found *Histogram
	matches := 0
	for _, t := range e.tables {
		s, ok := e.cat.Table(t)
		if !ok {
			continue
		}
		if s.ColumnIndex(ref.Column) < 0 {
			continue
		}
		matches++
		if h, ok := e.c.Lookup(t, ref.Column); ok {
			found = h
		}
	}
	if matches != 1 || found == nil {
		return nil, false
	}
	return found, true
}

func litValue(p expr.Expr) (float64, bool) {
	l, ok := p.(expr.Lit)
	if !ok || !l.Val.Numeric() {
		return 0, false
	}
	return l.Val.AsFloat(), true
}

func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	default:
		return op
	}
}
