package histogram

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"strings"
)

// savedHistogram is the gob wire form of one column's histogram.
type savedHistogram struct {
	Table   string
	Column  string
	Total   int
	Buckets []Bucket
}

// savedCollection is the gob wire form of a Collection.
type savedCollection struct {
	Version    int
	Rows       map[string]int
	Histograms []savedHistogram
}

// collectionWireVersion guards against incompatible formats.
const collectionWireVersion = 1

// Save serializes the collection.
func (c *Collection) Save(w io.Writer) error {
	out := savedCollection{Version: collectionWireVersion, Rows: c.rows}
	keys := make([]string, 0, len(c.hists))
	for k := range c.hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		table, column, ok := strings.Cut(k, "\x00")
		if !ok {
			return fmt.Errorf("histogram: malformed key %q", k)
		}
		h := c.hists[k]
		out.Histograms = append(out.Histograms, savedHistogram{
			Table: table, Column: column, Total: h.total, Buckets: h.buckets,
		})
	}
	if err := gob.NewEncoder(w).Encode(out); err != nil {
		return fmt.Errorf("histogram: encoding: %v", err)
	}
	return nil
}

// LoadCollection deserializes a collection saved with Save.
func LoadCollection(r io.Reader) (*Collection, error) {
	var in savedCollection
	if err := gob.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("histogram: decoding: %v", err)
	}
	if in.Version != collectionWireVersion {
		return nil, fmt.Errorf("histogram: unsupported statistics format version %d", in.Version)
	}
	c := &Collection{hists: make(map[string]*Histogram, len(in.Histograms)), rows: in.Rows}
	if c.rows == nil {
		c.rows = make(map[string]int)
	}
	for _, sh := range in.Histograms {
		if sh.Total < 0 {
			return nil, fmt.Errorf("histogram: %s.%s has negative total", sh.Table, sh.Column)
		}
		count := 0
		for _, b := range sh.Buckets {
			if b.Count < 0 || b.Distinct < 0 || b.Hi < b.Lo {
				return nil, fmt.Errorf("histogram: %s.%s has malformed bucket %+v", sh.Table, sh.Column, b)
			}
			count += b.Count
		}
		if count != sh.Total {
			return nil, fmt.Errorf("histogram: %s.%s bucket counts sum to %d, total %d",
				sh.Table, sh.Column, count, sh.Total)
		}
		c.hists[sh.Table+"\x00"+sh.Column] = &Histogram{buckets: sh.Buckets, total: sh.Total}
	}
	return c, nil
}
