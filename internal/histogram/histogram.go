// Package histogram implements the baseline cardinality estimation of
// conventional optimizers: single-column equi-depth histograms combined
// under the attribute value independence (AVI) assumption, with
// System-R-style "magic numbers" for predicates histograms cannot model.
//
// This is the comparator the paper's experiments measure against; its
// systematic failure on correlated predicates (Experiments 1–3) is what
// the sampling-based robust estimator fixes.
package histogram

import (
	"fmt"
	"sort"

	"robustqo/internal/catalog"
	"robustqo/internal/storage"
)

// DefaultBuckets matches the paper's description of the commercial
// system's histograms ("approximately 250 buckets").
const DefaultBuckets = 250

// Magic selectivity constants used when no histogram can answer,
// following Selinger et al. [30] as cited in Section 3.5.
const (
	MagicEq    = 0.10 // column = value
	MagicRange = 1.0 / 3.0
	MagicOther = 0.10
)

// Bucket is one equi-depth bucket covering values in [Lo, Hi].
type Bucket struct {
	Lo, Hi   float64
	Count    int // rows in the bucket
	Distinct int // distinct values in the bucket
}

// Histogram summarizes one numeric column.
type Histogram struct {
	buckets []Bucket
	total   int
}

// Build constructs an equi-depth histogram with at most nBuckets buckets
// from the column values (any numeric payload, converted to float64).
func Build(values []float64, nBuckets int) (*Histogram, error) {
	if nBuckets <= 0 {
		return nil, fmt.Errorf("histogram: bucket count %d must be positive", nBuckets)
	}
	h := &Histogram{total: len(values)}
	if len(values) == 0 {
		return h, nil
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	per := (len(sorted) + nBuckets - 1) / nBuckets
	for start := 0; start < len(sorted); {
		end := start + per
		if end > len(sorted) {
			end = len(sorted)
		}
		// Extend the bucket so equal values never straddle a boundary
		// (required for SelEq to be well defined).
		//qolint:allow-floatcmp — exact duplicate detection on sorted data
		for end < len(sorted) && sorted[end] == sorted[end-1] {
			end++
		}
		b := Bucket{Lo: sorted[start], Hi: sorted[end-1], Count: end - start}
		d := 1
		for i := start + 1; i < end; i++ {
			if sorted[i] != sorted[i-1] { //qolint:allow-floatcmp — exact distinct count
				d++
			}
		}
		b.Distinct = d
		h.buckets = append(h.buckets, b)
		start = end
	}
	return h, nil
}

// BuildFromColumn builds a histogram over a numeric column of a table.
func BuildFromColumn(t *storage.Table, column string, nBuckets int) (*Histogram, error) {
	idx := t.Schema().ColumnIndex(column)
	if idx < 0 {
		return nil, fmt.Errorf("histogram: table %q has no column %q", t.Name(), column)
	}
	col, _ := t.Schema().Column(column)
	var vals []float64
	switch col.Type {
	case catalog.Int, catalog.Date:
		ints := t.Ints(idx)
		vals = make([]float64, len(ints))
		for i, v := range ints {
			vals[i] = float64(v)
		}
	case catalog.Float:
		vals = t.Floats(idx)
	default:
		return nil, fmt.Errorf("histogram: column %q of table %q has type %s; only numeric columns supported",
			column, t.Name(), col.Type)
	}
	return Build(vals, nBuckets)
}

// Total returns the number of rows summarized.
func (h *Histogram) Total() int { return h.total }

// NumBuckets returns the bucket count.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// SelRange estimates the fraction of rows with value in [lo, hi], using
// uniform interpolation within partially covered buckets.
func (h *Histogram) SelRange(lo, hi float64) float64 {
	if h.total == 0 || hi < lo {
		return 0
	}
	matched := 0.0
	for _, b := range h.buckets {
		if b.Hi < lo || b.Lo > hi {
			continue
		}
		if b.Lo >= lo && b.Hi <= hi {
			matched += float64(b.Count)
			continue
		}
		// Partial overlap: interpolate. Point buckets are all-or-nothing.
		if b.Hi == b.Lo { //qolint:allow-floatcmp — point buckets have bitwise-equal bounds
			matched += float64(b.Count)
			continue
		}
		clampLo := lo
		if b.Lo > clampLo {
			clampLo = b.Lo
		}
		clampHi := hi
		if b.Hi < clampHi {
			clampHi = b.Hi
		}
		frac := (clampHi - clampLo) / (b.Hi - b.Lo)
		if frac < 0 {
			frac = 0
		}
		matched += frac * float64(b.Count)
	}
	sel := matched / float64(h.total)
	if sel > 1 {
		sel = 1
	}
	return sel
}

// SelEq estimates the fraction of rows equal to v using the containing
// bucket's count spread over its distinct values.
func (h *Histogram) SelEq(v float64) float64 {
	if h.total == 0 {
		return 0
	}
	for _, b := range h.buckets {
		if v < b.Lo || v > b.Hi {
			continue
		}
		if b.Distinct == 0 {
			return 0
		}
		return float64(b.Count) / float64(b.Distinct) / float64(h.total)
	}
	return 0
}

// Collection holds per-table, per-column histograms — the "statistics" a
// conventional optimizer maintains.
type Collection struct {
	hists map[string]*Histogram // "table\x00column"
	rows  map[string]int        // table row counts
}

// BuildAll builds DefaultBuckets-sized histograms for every numeric column
// of every table in the database.
func BuildAll(db *storage.Database) (*Collection, error) {
	return BuildAllSized(db, DefaultBuckets)
}

// BuildAllSized is BuildAll with a configurable bucket count.
func BuildAllSized(db *storage.Database, nBuckets int) (*Collection, error) {
	c := &Collection{hists: make(map[string]*Histogram), rows: make(map[string]int)}
	for _, name := range db.Catalog.TableNames() {
		t, ok := db.Table(name)
		if !ok {
			continue
		}
		c.rows[name] = t.NumRows()
		for _, col := range t.Schema().Columns {
			if col.Type == catalog.String {
				continue
			}
			h, err := BuildFromColumn(t, col.Name, nBuckets)
			if err != nil {
				return nil, err
			}
			c.hists[name+"\x00"+col.Name] = h
		}
	}
	return c, nil
}

// Lookup returns the histogram for table.column.
func (c *Collection) Lookup(table, column string) (*Histogram, bool) {
	h, ok := c.hists[table+"\x00"+column]
	return h, ok
}

// Rows returns the recorded row count of a table.
func (c *Collection) Rows(table string) (int, bool) {
	n, ok := c.rows[table]
	return n, ok
}

// DistinctTotal returns the total distinct-value count recorded across
// all buckets.
func (h *Histogram) DistinctTotal() int {
	d := 0
	for _, b := range h.buckets {
		d += b.Distinct
	}
	return d
}
