package histogram

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

func TestCollectionSaveLoadRoundTrip(t *testing.T) {
	db := buildTestDB(t)
	c, err := BuildAll(db)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Row counts and every histogram's estimates must survive.
	for _, table := range []string{"fact", "dim"} {
		n1, ok1 := c.Rows(table)
		n2, ok2 := loaded.Rows(table)
		if !ok1 || !ok2 || n1 != n2 {
			t.Fatalf("%s rows: %d/%v vs %d/%v", table, n1, ok1, n2, ok2)
		}
	}
	h1, _ := c.Lookup("fact", "f_a")
	h2, ok := loaded.Lookup("fact", "f_a")
	if !ok {
		t.Fatal("f_a histogram missing after load")
	}
	for _, probe := range []struct{ lo, hi float64 }{{0, 49}, {25, 74}, {90, 99}} {
		if h1.SelRange(probe.lo, probe.hi) != h2.SelRange(probe.lo, probe.hi) {
			t.Fatalf("SelRange(%g, %g) differs", probe.lo, probe.hi)
		}
	}
	if h1.SelEq(10) != h2.SelEq(10) || h1.DistinctTotal() != h2.DistinctTotal() {
		t.Error("point estimates differ after load")
	}
}

func TestLoadCollectionRejectsGarbage(t *testing.T) {
	if _, err := LoadCollection(strings.NewReader("junk")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLoadCollectionValidatesBuckets(t *testing.T) {
	encode := func(sc savedCollection) *bytes.Buffer {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(sc); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	// Wrong version.
	if _, err := LoadCollection(encode(savedCollection{Version: 99})); err == nil {
		t.Error("wrong version accepted")
	}
	// Bucket counts not summing to total.
	bad := savedCollection{
		Version: collectionWireVersion,
		Histograms: []savedHistogram{{
			Table: "t", Column: "c", Total: 10,
			Buckets: []Bucket{{Lo: 0, Hi: 1, Count: 3, Distinct: 2}},
		}},
	}
	if _, err := LoadCollection(encode(bad)); err == nil {
		t.Error("inconsistent totals accepted")
	}
	// Inverted bucket bounds.
	bad2 := savedCollection{
		Version: collectionWireVersion,
		Histograms: []savedHistogram{{
			Table: "t", Column: "c", Total: 3,
			Buckets: []Bucket{{Lo: 5, Hi: 1, Count: 3, Distinct: 2}},
		}},
	}
	if _, err := LoadCollection(encode(bad2)); err == nil {
		t.Error("inverted bounds accepted")
	}
	// Negative total.
	bad3 := savedCollection{
		Version:    collectionWireVersion,
		Histograms: []savedHistogram{{Table: "t", Column: "c", Total: -1}},
	}
	if _, err := LoadCollection(encode(bad3)); err == nil {
		t.Error("negative total accepted")
	}
	// Valid empty collection round-trips.
	ok := savedCollection{Version: collectionWireVersion}
	c, err := LoadCollection(encode(ok))
	if err != nil {
		t.Fatal(err)
	}
	if _, found := c.Rows("anything"); found {
		t.Error("empty collection has rows")
	}
}
