package histogram

import (
	"math"
	"testing"
	"testing/quick"

	"robustqo/internal/catalog"
	"robustqo/internal/expr"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	h, err := Build(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 0 || h.NumBuckets() != 0 {
		t.Errorf("empty histogram = %d total, %d buckets", h.Total(), h.NumBuckets())
	}
	if h.SelRange(0, 1) != 0 || h.SelEq(0) != 0 {
		t.Error("empty histogram selectivities not 0")
	}
}

func TestEquiDepthBucketSizes(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	h, err := Build(vals, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBuckets() != 10 {
		t.Fatalf("buckets = %d", h.NumBuckets())
	}
	for _, b := range h.buckets {
		if b.Count != 100 {
			t.Errorf("bucket count = %d", b.Count)
		}
		if b.Distinct != 100 {
			t.Errorf("bucket distinct = %d", b.Distinct)
		}
	}
}

func TestSelRangeUniform(t *testing.T) {
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = float64(i)
	}
	h, _ := Build(vals, 100)
	cases := []struct {
		lo, hi, want float64
	}{
		{0, 9999, 1.0},
		{0, 4999.5, 0.5},
		{2500, 7499, 0.5},
		{-100, -1, 0},
		{10000, 20000, 0},
		{5, 4, 0}, // inverted
	}
	for _, c := range cases {
		if got := h.SelRange(c.lo, c.hi); math.Abs(got-c.want) > 0.02 {
			t.Errorf("SelRange(%g, %g) = %g, want ~%g", c.lo, c.hi, got, c.want)
		}
	}
}

func TestSelEq(t *testing.T) {
	// 100 copies each of values 0..9.
	var vals []float64
	for v := 0; v < 10; v++ {
		for i := 0; i < 100; i++ {
			vals = append(vals, float64(v))
		}
	}
	h, _ := Build(vals, 10)
	for v := 0; v < 10; v++ {
		if got := h.SelEq(float64(v)); math.Abs(got-0.1) > 0.05 {
			t.Errorf("SelEq(%d) = %g, want ~0.1", v, got)
		}
	}
	if got := h.SelEq(42); got != 0 {
		t.Errorf("SelEq(42) = %g", got)
	}
}

func TestEqualValuesDoNotStraddleBuckets(t *testing.T) {
	// 1000 copies of one value with a handful of others must not split the
	// heavy value across buckets.
	vals := make([]float64, 0, 1010)
	for i := 0; i < 1000; i++ {
		vals = append(vals, 5)
	}
	for i := 0; i < 10; i++ {
		vals = append(vals, float64(i))
	}
	h, _ := Build(vals, 8)
	// Exactly one bucket contains the heavy value, and the bucket counts
	// still sum to the total (the boundary extension stayed consistent).
	containing, total := 0, 0
	for _, b := range h.buckets {
		total += b.Count
		if 5 >= b.Lo && 5 <= b.Hi {
			containing++
		}
	}
	if containing != 1 {
		t.Errorf("heavy value spans %d buckets", containing)
	}
	if total != 1010 {
		t.Errorf("bucket counts sum to %d", total)
	}
	// The classical equi-depth estimate for the mixed bucket is
	// count/distinct/total; the heavy run (values 0..5, count 1006,
	// distinct 6) yields 1006/6/1010.
	want := 1006.0 / 6 / 1010
	if got := h.SelEq(5); math.Abs(got-want) > 1e-9 {
		t.Errorf("SelEq(heavy) = %g, want %g", got, want)
	}
}

func TestSelRangeBoundsProperty(t *testing.T) {
	f := func(raw []uint16, loRaw, hiRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v % 1000)
		}
		lo, hi := float64(loRaw%1000), float64(hiRaw%1000)
		if lo > hi {
			lo, hi = hi, lo
		}
		h, err := Build(vals, 16)
		if err != nil {
			return false
		}
		s := h.SelRange(lo, hi)
		if s < 0 || s > 1 {
			return false
		}
		// Widening the range cannot reduce selectivity.
		return h.SelRange(lo-1, hi+1) >= s-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSelRangeExactOnFullCoverage(t *testing.T) {
	// When [lo,hi] covers entire buckets, the estimate is exact.
	rng := stats.NewRNG(5)
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = float64(testkit.Intn(rng, 100))
	}
	h, _ := Build(vals, 25)
	naive := 0
	for _, v := range vals {
		if v >= 0 && v <= 99 {
			naive++
		}
	}
	if got := h.SelRange(0, 99); math.Abs(got-float64(naive)/5000) > 1e-12 {
		t.Errorf("full coverage = %g", got)
	}
}

func buildTestDB(t *testing.T) *storage.Database {
	t.Helper()
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	dim, err := db.CreateTable(&catalog.TableSchema{
		Name: "dim",
		Columns: []catalog.Column{
			{Name: "d_id", Type: catalog.Int},
			{Name: "d_attr", Type: catalog.Int},
		},
		PrimaryKey: "d_id",
	})
	if err != nil {
		t.Fatal(err)
	}
	fact, err := db.CreateTable(&catalog.TableSchema{
		Name: "fact",
		Columns: []catalog.Column{
			{Name: "f_id", Type: catalog.Int},
			{Name: "f_dim", Type: catalog.Int},
			{Name: "f_a", Type: catalog.Int},
			{Name: "f_b", Type: catalog.Int},
			{Name: "f_name", Type: catalog.String},
		},
		PrimaryKey: "f_id",
		Foreign:    []catalog.ForeignKey{{Column: "f_dim", RefTable: "dim"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(42)
	for d := 0; d < 100; d++ {
		_ = dim.Append(value.Row{value.Int(int64(d)), value.Int(int64(d % 10))})
	}
	for i := 0; i < 10000; i++ {
		a := int64(testkit.Intn(rng, 100))
		// f_b perfectly correlated with f_a: AVI will be badly wrong for
		// the conjunction f_a < k AND f_b < k.
		row := value.Row{
			value.Int(int64(i)),
			value.Int(int64(testkit.Intn(rng, 100))),
			value.Int(a),
			value.Int(a),
			value.Str("x"),
		}
		_ = fact.Append(row)
	}
	return db
}

func TestBuildAllSkipsStrings(t *testing.T) {
	db := buildTestDB(t)
	c, err := BuildAll(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup("fact", "f_a"); !ok {
		t.Error("f_a histogram missing")
	}
	if _, ok := c.Lookup("fact", "f_name"); ok {
		t.Error("string column got a histogram")
	}
	if n, ok := c.Rows("fact"); !ok || n != 10000 {
		t.Errorf("Rows(fact) = %d, %v", n, ok)
	}
	if _, ok := c.Rows("ghost"); ok {
		t.Error("Rows(ghost) found")
	}
}

func TestBuildFromColumnErrors(t *testing.T) {
	db := buildTestDB(t)
	fact := testkit.Table(db, "fact")
	if _, err := BuildFromColumn(fact, "missing", 10); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := BuildFromColumn(fact, "f_name", 10); err == nil {
		t.Error("string column accepted")
	}
}

func TestEstimateMarginalsAccurate(t *testing.T) {
	db := buildTestDB(t)
	c, _ := BuildAll(db)
	// f_a < 50 is ~50% of rows; a single histogram gets this right.
	got := Estimate(c, db.Catalog, []string{"fact"}, testkit.Expr("f_a < 50"))
	if math.Abs(got-0.5) > 0.05 {
		t.Errorf("marginal estimate = %g, want ~0.5", got)
	}
}

func TestEstimateAVIFailsOnCorrelation(t *testing.T) {
	db := buildTestDB(t)
	c, _ := BuildAll(db)
	// True selectivity of (f_a < 50 AND f_b < 50) is ~0.5 because the
	// columns are identical; AVI predicts 0.25. This failure is the
	// premise of the whole paper.
	got := Estimate(c, db.Catalog, []string{"fact"}, testkit.Expr("f_a < 50 AND f_b < 50"))
	if math.Abs(got-0.25) > 0.05 {
		t.Errorf("AVI estimate = %g, want ~0.25 (the systematically wrong answer)", got)
	}
}

func TestEstimateConnectivesAndNegation(t *testing.T) {
	db := buildTestDB(t)
	c, _ := BuildAll(db)
	tables := []string{"fact"}
	or := Estimate(c, db.Catalog, tables, testkit.Expr("f_a < 50 OR f_b < 50"))
	if math.Abs(or-0.75) > 0.05 { // 1 - 0.5*0.5 under independence
		t.Errorf("OR estimate = %g", or)
	}
	not := Estimate(c, db.Catalog, tables, testkit.Expr("NOT f_a < 50"))
	if math.Abs(not-0.5) > 0.05 {
		t.Errorf("NOT estimate = %g", not)
	}
	nilSel := Estimate(c, db.Catalog, tables, nil)
	if nilSel != 1 {
		t.Errorf("nil predicate = %g", nilSel)
	}
}

func TestEstimateComparisonOperators(t *testing.T) {
	db := buildTestDB(t)
	c, _ := BuildAll(db)
	tables := []string{"fact"}
	eq := Estimate(c, db.Catalog, tables, testkit.Expr("f_a = 10"))
	if math.Abs(eq-0.01) > 0.01 {
		t.Errorf("EQ estimate = %g, want ~0.01", eq)
	}
	ne := Estimate(c, db.Catalog, tables, testkit.Expr("f_a <> 10"))
	if math.Abs(ne-0.99) > 0.01 {
		t.Errorf("NE estimate = %g", ne)
	}
	ge := Estimate(c, db.Catalog, tables, testkit.Expr("f_a >= 90"))
	if math.Abs(ge-0.1) > 0.05 {
		t.Errorf("GE estimate = %g", ge)
	}
	lt := Estimate(c, db.Catalog, tables, testkit.Expr("f_a < 10"))
	if math.Abs(lt-0.1) > 0.05 {
		t.Errorf("LT estimate = %g", lt)
	}
	flipped := Estimate(c, db.Catalog, tables, testkit.Expr("50 > f_a"))
	if math.Abs(flipped-0.5) > 0.05 {
		t.Errorf("flipped comparison = %g", flipped)
	}
	between := Estimate(c, db.Catalog, tables, testkit.Expr("f_a BETWEEN 25 AND 74"))
	if math.Abs(between-0.5) > 0.05 {
		t.Errorf("BETWEEN estimate = %g", between)
	}
}

func TestEstimateMagicFallbacks(t *testing.T) {
	db := buildTestDB(t)
	c, _ := BuildAll(db)
	tables := []string{"fact"}
	// Column-to-column comparison: magic range.
	if got := Estimate(c, db.Catalog, tables, testkit.Expr("f_a < f_b")); got != MagicRange {
		t.Errorf("col-col = %g, want %g", got, MagicRange)
	}
	// Column-to-column equality: magic eq.
	if got := Estimate(c, db.Catalog, tables, testkit.Expr("f_a = f_b")); got != MagicEq {
		t.Errorf("col-col eq = %g, want %g", got, MagicEq)
	}
	// Substring predicate.
	if got := Estimate(c, db.Catalog, tables, testkit.Expr("f_name CONTAINS 'x'")); got != MagicOther {
		t.Errorf("contains = %g, want %g", got, MagicOther)
	}
	// Unknown column.
	if got := Estimate(c, db.Catalog, tables, testkit.Expr("ghost = 1")); got != MagicEq {
		t.Errorf("unknown eq = %g, want %g", got, MagicEq)
	}
	// Arithmetic comparand.
	if got := Estimate(c, db.Catalog, tables, testkit.Expr("f_a + 1 < 10")); got != MagicRange {
		t.Errorf("arith = %g, want %g", got, MagicRange)
	}
	// BETWEEN with non-literal bound.
	if got := Estimate(c, db.Catalog, tables, testkit.Expr("f_a BETWEEN f_b AND 10")); got != MagicRange {
		t.Errorf("between-nonlit = %g, want %g", got, MagicRange)
	}
}

func TestEstimateQualifiedAndAmbiguous(t *testing.T) {
	db := buildTestDB(t)
	c, _ := BuildAll(db)
	tables := []string{"fact", "dim"}
	got := Estimate(c, db.Catalog, tables, testkit.Expr("fact.f_a < 50"))
	if math.Abs(got-0.5) > 0.05 {
		t.Errorf("qualified = %g", got)
	}
	// d_attr exists only in dim: unqualified resolution works.
	got = Estimate(c, db.Catalog, tables, testkit.Expr("d_attr < 5"))
	if math.Abs(got-0.5) > 0.1 {
		t.Errorf("dim attr = %g", got)
	}
}

func TestEstimateClamped(t *testing.T) {
	db := buildTestDB(t)
	c, _ := BuildAll(db)
	// Huge OR of many terms stays within [0, 1].
	terms := make([]expr.Expr, 20)
	for i := range terms {
		terms[i] = testkit.Expr("f_a >= 0")
	}
	got := Estimate(c, db.Catalog, []string{"fact"}, expr.Or{Terms: terms})
	if got < 0 || got > 1 {
		t.Errorf("clamp failed: %g", got)
	}
}

func TestEstimateIn(t *testing.T) {
	db := buildTestDB(t)
	c, _ := BuildAll(db)
	tables := []string{"fact"}
	// f_a uniform over 0..99: three listed values ~ 3%.
	got := Estimate(c, db.Catalog, tables, testkit.Expr("f_a IN (1, 2, 3)"))
	if math.Abs(got-0.03) > 0.02 {
		t.Errorf("IN estimate = %g, want ~0.03", got)
	}
	// Unknown column: magic equality per value.
	got = Estimate(c, db.Catalog, tables, testkit.Expr("ghost IN (1, 2)"))
	if math.Abs(got-0.2) > 1e-9 {
		t.Errorf("unknown IN = %g, want 0.2", got)
	}
	// Non-column subject: magic other.
	got = Estimate(c, db.Catalog, tables, testkit.Expr("f_a + 1 IN (1)"))
	if got != MagicOther {
		t.Errorf("arith IN = %g", got)
	}
	// Huge unknown-column lists clamp at 1.
	got = Estimate(c, db.Catalog, tables, testkit.Expr("ghost IN (1,2,3,4,5,6,7,8,9,10,11,12)"))
	if got != 1 {
		t.Errorf("clamped IN = %g", got)
	}
	// String values against a numeric histogram contribute nothing.
	got = Estimate(c, db.Catalog, tables, testkit.Expr("f_a IN ('x')"))
	if got != 0 {
		t.Errorf("string-in-numeric = %g", got)
	}
}
