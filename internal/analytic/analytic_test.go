package analytic

import (
	"math"
	"testing"

	"robustqo/internal/core"
	"robustqo/internal/stats"
)

func TestPaper51Crossover(t *testing.T) {
	m := Paper51Model()
	pc := m.Crossover()
	// The paper reports pc ≈ 0.14%.
	if math.Abs(pc-0.0014) > 0.0002 {
		t.Errorf("crossover = %g, want ~0.0014", pc)
	}
	// Costs match the stated linear forms at both ends.
	if got := m.CostOf(StablePlan, 0); got != 35 {
		t.Errorf("stable fixed = %g", got)
	}
	if got := m.CostOf(RiskyPlan, 0); got != 5 {
		t.Errorf("risky fixed = %g", got)
	}
	if got := m.CostOf(RiskyPlan, pc) - m.CostOf(StablePlan, pc); math.Abs(got) > 1e-9 {
		t.Errorf("costs differ at crossover by %g", got)
	}
}

func TestHighCrossoverModel(t *testing.T) {
	m := HighCrossoverModel()
	if pc := m.Crossover(); math.Abs(pc-0.052) > 0.003 {
		t.Errorf("high crossover = %g, want ~0.052", pc)
	}
}

func TestPlanForEstimate(t *testing.T) {
	m := Paper51Model()
	pc := m.Crossover()
	if m.PlanForEstimate(pc/2) != RiskyPlan {
		t.Error("below crossover should be risky")
	}
	if m.PlanForEstimate(pc*2) != StablePlan {
		t.Error("above crossover should be stable")
	}
	if m.PlanForEstimate(pc) != RiskyPlan {
		t.Error("at crossover the tie goes to the risky plan")
	}
}

func TestDecisionCutoffMonotoneInThreshold(t *testing.T) {
	m := Paper51Model()
	prev := 1 << 30
	for _, threshold := range []core.ConfidenceThreshold{0.05, 0.2, 0.5, 0.8, 0.95} {
		k, err := DecisionCutoff(1000, core.Jeffreys, threshold, m.Crossover())
		if err != nil {
			t.Fatal(err)
		}
		if k > prev {
			t.Errorf("cutoff increased with threshold: %d after %d", k, prev)
		}
		prev = k
	}
}

func TestT95NeverPicksRisky(t *testing.T) {
	// Section 5.2.1: at T = 95% with n = 1000, even zero matches leave a
	// >5% chance that selectivity exceeds pc, so the risky plan is never
	// chosen.
	m := Paper51Model()
	k, err := DecisionCutoff(1000, core.Jeffreys, 0.95, m.Crossover())
	if err != nil {
		t.Fatal(err)
	}
	if k != -1 {
		t.Errorf("cutoff = %d, want -1 (never risky)", k)
	}
	out, err := m.Evaluate(0.0005, 1000, core.Jeffreys, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if out.RiskyProb != 0 {
		t.Errorf("risky prob = %g", out.RiskyProb)
	}
	if out.Variance != 0 {
		t.Errorf("variance = %g (plan is deterministic)", out.Variance)
	}
}

func TestFiftyTupleSampleAlwaysScans(t *testing.T) {
	// Section 6.2.4's self-adjusting behavior: at n = 50, T = 50%, even
	// k = 0 yields an estimate above the crossover.
	m := Paper51Model()
	k, err := DecisionCutoff(50, core.Jeffreys, 0.5, m.Crossover())
	if err != nil {
		t.Fatal(err)
	}
	if k != -1 {
		t.Errorf("cutoff = %d, want -1", k)
	}
}

func TestDecisionCutoffEdges(t *testing.T) {
	m := Paper51Model()
	if _, err := DecisionCutoff(0, core.Jeffreys, 0.5, m.Crossover()); err == nil {
		t.Error("n = 0 accepted")
	}
	if _, err := DecisionCutoff(100, core.Jeffreys, 0, m.Crossover()); err == nil {
		t.Error("T = 0 accepted")
	}
	// A crossover of ~1 means the risky plan is always chosen.
	k, err := DecisionCutoff(100, core.Jeffreys, 0.5, 0.9999)
	if err != nil {
		t.Fatal(err)
	}
	if k != 100 {
		t.Errorf("cutoff = %d, want n", k)
	}
}

func TestEvaluateLowThresholdAggressive(t *testing.T) {
	// At very low selectivity, low thresholds should almost surely pick
	// the risky plan; at high selectivity, the stable plan.
	m := Paper51Model()
	lo, err := m.Evaluate(0.0001, 1000, core.Jeffreys, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if lo.RiskyProb < 0.95 {
		t.Errorf("low-selectivity risky prob = %g", lo.RiskyProb)
	}
	hi, err := m.Evaluate(0.01, 1000, core.Jeffreys, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if hi.RiskyProb > 0.05 {
		t.Errorf("high-selectivity risky prob = %g", hi.RiskyProb)
	}
	if _, err := m.Evaluate(-0.1, 100, core.Jeffreys, 0.5); err == nil {
		t.Error("negative selectivity accepted")
	}
}

func TestEvaluateMeanBetweenPlanCosts(t *testing.T) {
	m := Paper51Model()
	for _, p := range []float64{0, 0.0005, 0.0014, 0.003, 0.01} {
		out, err := m.Evaluate(p, 500, core.Jeffreys, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		lo := math.Min(m.CostOf(RiskyPlan, p), m.CostOf(StablePlan, p))
		hi := math.Max(m.CostOf(RiskyPlan, p), m.CostOf(StablePlan, p))
		if out.Mean < lo-1e-9 || out.Mean > hi+1e-9 {
			t.Errorf("p=%g: mean %g outside [%g, %g]", p, out.Mean, lo, hi)
		}
		if out.Variance < 0 {
			t.Errorf("p=%g: negative variance", p)
		}
	}
}

func TestLargerSamplesReduceMistakes(t *testing.T) {
	// Figure 7's message: at T = 50%, larger samples lower the expected
	// time for selectivities near the crossover. (Test below the
	// crossover, where the risky plan is correct: above it, tiny samples
	// can win by accident through the Experiment-4 self-adjustment that
	// always picks the scan.)
	m := Paper51Model()
	p := m.Crossover() / 2 // risky plan is right; small samples play safe
	prevMean := math.Inf(1)
	for _, n := range []int{100, 500, 2500} {
		out, err := m.Evaluate(p, n, core.Jeffreys, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if out.Mean > prevMean+1e-9 {
			t.Errorf("n=%d: mean %g did not improve on %g", n, out.Mean, prevMean)
		}
		prevMean = out.Mean
	}
}

func TestWorkloadSummary(t *testing.T) {
	if m, s := WorkloadSummary(nil); m != 0 || s != 0 {
		t.Error("empty summary nonzero")
	}
	// Two deterministic outcomes: variance is purely across queries.
	outs := []Outcome{
		{Mean: 10, Variance: 0},
		{Mean: 20, Variance: 0},
	}
	mean, sd := WorkloadSummary(outs)
	if mean != 15 || math.Abs(sd-5) > 1e-12 {
		t.Errorf("summary = %g, %g", mean, sd)
	}
	// Per-query variance contributes too.
	outs2 := []Outcome{{Mean: 15, Variance: 25}, {Mean: 15, Variance: 25}}
	_, sd2 := WorkloadSummary(outs2)
	if math.Abs(sd2-5) > 1e-12 {
		t.Errorf("pooled sd = %g", sd2)
	}
}

func TestHigherThresholdLowersWorkloadVariance(t *testing.T) {
	// Figure 6's monotone trade-off: the workload std-dev decreases as
	// the threshold rises.
	m := Paper51Model()
	var prev float64 = math.Inf(1)
	for _, threshold := range []core.ConfidenceThreshold{0.05, 0.2, 0.5, 0.8, 0.95} {
		var outs []Outcome
		for i := 0; i <= 20; i++ {
			p := float64(i) * 0.0005 // 0 to 1%
			o, err := m.Evaluate(p, 1000, core.Jeffreys, threshold)
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, o)
		}
		_, sd := WorkloadSummary(outs)
		if sd > prev+1e-9 {
			t.Errorf("T=%v: std dev %g rose above %g", threshold, sd, prev)
		}
		prev = sd
	}
}

func TestCostDistMatchesPaperFigure3(t *testing.T) {
	// Figures 2/3: sample of 200 with 50 matches, Jeffreys prior →
	// posterior Beta(50.5, 150.5). The paper reports plan-1 estimates of
	// 30.2 (T=50) and 33.5 (T=80), plan-2 estimates of 31.5 and 31.9.
	post, err := core.Jeffreys.Posterior(50, 200)
	if err != nil {
		t.Fatal(err)
	}
	plan1, plan2 := Figure1Plans()
	d1 := CostDist{Posterior: post, Cost: plan1}
	d2 := CostDist{Posterior: post, Cost: plan2}
	cases := []struct {
		d    CostDist
		t    core.ConfidenceThreshold
		want float64
	}{
		{d1, 0.5, 30.2},
		{d1, 0.8, 33.5},
		{d2, 0.5, 31.5},
		{d2, 0.8, 31.9},
	}
	for _, c := range cases {
		got, err := c.d.Quantile(c.t)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 0.15 {
			t.Errorf("quantile at %v = %g, want ~%g", c.t, got, c.want)
		}
	}
	// Plan preference flips around T = 65% (Section 3.1).
	flip := func(threshold core.ConfidenceThreshold) bool {
		c1, _ := d1.Quantile(threshold)
		c2, _ := d2.Quantile(threshold)
		return c1 > c2
	}
	if flip(0.60) {
		t.Error("plan 1 should still win at T=60%")
	}
	if !flip(0.70) {
		t.Error("plan 2 should win at T=70%")
	}
}

func TestCostDistCalculus(t *testing.T) {
	post, _ := stats.NewBeta(50.5, 150.5)
	d := CostDist{Posterior: post, Cost: LinearCost{Fixed: 10, Slope: 100}}
	// CDF and Quantile invert each other.
	for _, p := range []float64{0.1, 0.5, 0.9} {
		c, err := d.Quantile(core.ConfidenceThreshold(p))
		if err != nil {
			t.Fatal(err)
		}
		if back := d.CDF(c); math.Abs(back-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%g)) = %g", p, back)
		}
	}
	// PDF integrates to ~1 over the support.
	lo := d.Cost.At(0)
	hi := d.Cost.At(1)
	const steps = 20000
	h := (hi - lo) / steps
	sum := 0.0
	for i := 1; i < steps; i++ {
		sum += d.PDF(lo + float64(i)*h)
	}
	if got := sum * h; math.Abs(got-1) > 1e-3 {
		t.Errorf("pdf integrates to %g", got)
	}
	// Degenerate flat cost.
	flat := CostDist{Posterior: post, Cost: LinearCost{Fixed: 7}}
	if flat.CDF(6.9) != 0 || flat.CDF(7.1) != 1 || flat.PDF(7) != 0 {
		t.Error("flat-cost distribution wrong")
	}
	if _, err := d.Quantile(0); err == nil {
		t.Error("quantile at 0 accepted")
	}
	if !math.IsNaN((LinearCost{Fixed: 1}).Inverse(5)) {
		t.Error("Inverse of flat cost should be NaN")
	}
}
