// Package analytic implements the closed-form model of Section 5 of the
// paper: a single-table query with two candidate plans whose costs are
// linear in the number of qualifying tuples, optimized from an n-tuple
// sample interpreted at confidence threshold T.
//
// The model yields, without simulation, the exact probability that each
// plan is chosen for any true selectivity, and hence the exact mean and
// variance of execution time — everything behind Figures 5–8.
package analytic

import (
	"fmt"
	"math"

	"robustqo/internal/core"
	"robustqo/internal/stats"
)

// LinearCost is an execution cost linear in selectivity:
// cost(s) = Fixed + Slope·s. (In the paper's notation cost = f + v·x with
// x = s·N; Slope folds in the table size: Slope = v·N.)
type LinearCost struct {
	Fixed float64
	Slope float64
}

// At returns the cost at selectivity s.
func (l LinearCost) At(s float64) float64 { return l.Fixed + l.Slope*s }

// Inverse returns the selectivity at which the cost equals c.
func (l LinearCost) Inverse(c float64) float64 {
	if l.Slope == 0 {
		return math.NaN()
	}
	return (c - l.Fixed) / l.Slope
}

// TwoPlanModel is the Section 5.1 setting: a stable plan P1 (sequential
// scan: high fixed cost, tiny slope) and a risky plan P2 (index
// intersection: tiny fixed cost, steep slope).
type TwoPlanModel struct {
	N      int        // table rows
	Stable LinearCost // the paper's P1
	Risky  LinearCost // the paper's P2
}

// Plan identifies which of the two plans was chosen.
type Plan int

// The two plans of the model.
const (
	StablePlan Plan = 1 // P1
	RiskyPlan  Plan = 2 // P2
)

// Paper51Model returns the exact parameterization of Section 5.1:
// N = 6,000,000, f1 = 35, v1 = 3.5e-6, f2 = 5, v2 = 3.5e-3 (slopes are
// v·N). Its crossover is pc ≈ 0.14%.
func Paper51Model() TwoPlanModel {
	const n = 6_000_000
	return TwoPlanModel{
		N:      n,
		Stable: LinearCost{Fixed: 35, Slope: 3.5e-6 * n},
		Risky:  LinearCost{Fixed: 5, Slope: 3.5e-3 * n},
	}
}

// HighCrossoverModel returns the perturbed cost model of Section 5.2.3,
// with the crossover pushed to about 5.2% selectivity (Figure 8): the
// risky plan's per-tuple cost is much closer to the stable plan's.
func HighCrossoverModel() TwoPlanModel {
	const n = 6_000_000
	// pc = (f1 - f2) / ((v2 - v1) N) = 30 / (9.6154e-5 * 6e6) ≈ 5.2%.
	return TwoPlanModel{
		N:      n,
		Stable: LinearCost{Fixed: 35, Slope: 3.5e-6 * n},
		Risky:  LinearCost{Fixed: 5, Slope: 9.96154e-5 * n},
	}
}

// Figure1Plans returns the two hypothetical plans of Figures 1–3,
// reverse-engineered from the quantile values the paper reports (plan-1
// cost 30.2/33.5 and plan-2 cost 31.5/31.9 at T = 50%/80% under the
// Beta(50.5, 150.5) posterior of a 200-tuple sample with 50 matches);
// their crossover falls at 26% selectivity and plan preference flips at
// T ≈ 65%, both as stated in Section 3.1.
func Figure1Plans() (plan1, plan2 LinearCost) {
	return LinearCost{Fixed: -1.02, Slope: 124.7}, LinearCost{Fixed: 27.61, Slope: 15.6}
}

// Crossover returns the selectivity pc at which the two plans cost the
// same; below it the risky plan is cheaper.
func (m TwoPlanModel) Crossover() float64 {
	return (m.Stable.Fixed - m.Risky.Fixed) / (m.Risky.Slope - m.Stable.Slope)
}

// CostOf returns the execution cost of the given plan at true
// selectivity p.
func (m TwoPlanModel) CostOf(plan Plan, p float64) float64 {
	if plan == RiskyPlan {
		return m.Risky.At(p)
	}
	return m.Stable.At(p)
}

// PlanForEstimate returns the plan chosen for a selectivity estimate:
// risky when the estimate is at or below the crossover.
func (m TwoPlanModel) PlanForEstimate(s float64) Plan {
	if s <= m.Crossover() {
		return RiskyPlan
	}
	return StablePlan
}

// DecisionCutoff computes the largest sample match count k such that the
// robust estimate cdf⁻¹(T) of Beta(k+a, n-k+b) still falls at or below
// the crossover pc — i.e. the optimizer picks the risky plan iff k <=
// cutoff. It returns -1 when even k = 0 exceeds pc (the optimizer never
// takes the risk, as with T = 95% in Section 5.2.1).
func DecisionCutoff(n int, prior core.Prior, t core.ConfidenceThreshold, pc float64) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("analytic: sample size %d must be positive", n)
	}
	if err := t.Validate(); err != nil {
		return 0, err
	}
	// RobustSelectivity is increasing in k; binary search the boundary.
	sel := func(k int) (float64, error) { return core.RobustSelectivity(k, n, prior, t) }
	s0, err := sel(0)
	if err != nil {
		return 0, err
	}
	if s0 > pc {
		return -1, nil
	}
	lo, hi := 0, n // invariant: sel(lo) <= pc, sel(hi) > pc or hi = n
	sn, err := sel(n)
	if err != nil {
		return 0, err
	}
	if sn <= pc {
		return n, nil
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		s, err := sel(mid)
		if err != nil {
			return 0, err
		}
		if s <= pc {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// Outcome summarizes the optimizer's behavior at one true selectivity.
type Outcome struct {
	TrueSelectivity float64
	RiskyProb       float64 // probability the risky plan is chosen
	Mean            float64 // expected execution cost
	Variance        float64 // variance of execution cost over the sample draw
}

// StdDev returns the standard deviation of the execution cost.
func (o Outcome) StdDev() float64 { return math.Sqrt(o.Variance) }

// Evaluate computes the exact plan-choice distribution and execution cost
// moments for a query of true selectivity p, planned from an n-tuple
// sample at threshold t: the match count is Binomial(n, p), the plan is
// risky iff the match count is at most the decision cutoff, and each
// plan's cost at p is deterministic.
func (m TwoPlanModel) Evaluate(p float64, n int, prior core.Prior, t core.ConfidenceThreshold) (Outcome, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return Outcome{}, fmt.Errorf("analytic: selectivity %g outside [0, 1]", p)
	}
	cutoff, err := DecisionCutoff(n, prior, t, m.Crossover())
	if err != nil {
		return Outcome{}, err
	}
	bin, err := stats.NewBinomial(n, p)
	if err != nil {
		return Outcome{}, err
	}
	riskyProb := bin.CDF(cutoff) // CDF(-1) = 0
	cRisky := m.CostOf(RiskyPlan, p)
	cStable := m.CostOf(StablePlan, p)
	mean := riskyProb*cRisky + (1-riskyProb)*cStable
	second := riskyProb*cRisky*cRisky + (1-riskyProb)*cStable*cStable
	variance := second - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Outcome{TrueSelectivity: p, RiskyProb: riskyProb, Mean: mean, Variance: variance}, nil
}

// WorkloadSummary aggregates outcomes across a set of equally likely
// query selectivities (the Figure 6 construction): the mean execution
// time over the workload and its standard deviation, accounting for both
// the spread across selectivities and the randomness of the sample.
func WorkloadSummary(outcomes []Outcome) (mean, stdDev float64) {
	if len(outcomes) == 0 {
		return 0, 0
	}
	var m1, m2 float64
	for _, o := range outcomes {
		m1 += o.Mean
		m2 += o.Variance + o.Mean*o.Mean
	}
	m1 /= float64(len(outcomes))
	m2 /= float64(len(outcomes))
	v := m2 - m1*m1
	if v < 0 {
		v = 0
	}
	return m1, math.Sqrt(v)
}

// CostDist is the execution-cost distribution of a plan under an
// uncertain selectivity (Figures 2 and 3): the posterior selectivity
// distribution pushed through the plan's monotone linear cost function.
type CostDist struct {
	Posterior stats.Beta
	Cost      LinearCost
}

// CDF returns P[cost <= c].
func (d CostDist) CDF(c float64) float64 {
	if d.Cost.Slope == 0 {
		if c >= d.Cost.Fixed {
			return 1
		}
		return 0
	}
	return d.Posterior.CDF(d.Cost.Inverse(c))
}

// PDF returns the density of the execution cost at c, via the
// change-of-variable f*(c) = f(g⁻¹(c)) / g'(s).
func (d CostDist) PDF(c float64) float64 {
	if d.Cost.Slope == 0 {
		return 0
	}
	return d.Posterior.PDF(d.Cost.Inverse(c)) / math.Abs(d.Cost.Slope)
}

// Quantile returns cdf⁻¹(t): the cost estimate the optimizer assigns to
// this plan at confidence threshold t. Because the cost function is
// monotone, this equals the cost function applied to the selectivity
// quantile — the shortcut of Section 3.1.1.
func (d CostDist) Quantile(t core.ConfidenceThreshold) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	s, err := d.Posterior.Quantile(float64(t))
	if err != nil {
		return 0, err
	}
	return d.Cost.At(s), nil
}
