package storage

import (
	"strings"
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/value"
)

func testSchema() *catalog.TableSchema {
	return &catalog.TableSchema{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "id", Type: catalog.Int},
			{Name: "x", Type: catalog.Float},
			{Name: "s", Type: catalog.String},
			{Name: "d", Type: catalog.Date},
		},
		PrimaryKey: "id",
	}
}

func TestNewTableNilSchema(t *testing.T) {
	if _, err := NewTable(nil); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestAppendAndRead(t *testing.T) {
	tab, err := NewTable(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	rows := []value.Row{
		{value.Int(1), value.Float(1.5), value.Str("a"), value.Date(10)},
		{value.Int(2), value.Float(2.5), value.Str("b"), value.Date(20)},
	}
	for _, r := range rows {
		if err := tab.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
	if got := tab.Value(1, 2); got.S != "b" {
		t.Errorf("Value(1,2) = %v", got)
	}
	if got := tab.Value(0, 3); got.Kind != catalog.Date || got.I != 10 {
		t.Errorf("Value(0,3) = %v", got)
	}
	r := tab.Row(1)
	if r[0].I != 2 || r[1].F != 2.5 {
		t.Errorf("Row(1) = %v", r)
	}
	buf := make(value.Row, 4)
	tab.ReadRow(0, buf)
	if buf[0].I != 1 || buf[2].S != "a" {
		t.Errorf("ReadRow = %v", buf)
	}
}

func TestAppendArityAndTypeErrors(t *testing.T) {
	tab, _ := NewTable(testSchema())
	if err := tab.Append(value.Row{value.Int(1)}); err == nil {
		t.Error("short row accepted")
	}
	if err := tab.Append(value.Row{value.Int(1), value.Str("bad"), value.Str("a"), value.Date(1)}); err == nil {
		t.Error("type-mismatched row accepted")
	}
	if tab.NumRows() != 0 {
		t.Errorf("failed appends changed row count to %d", tab.NumRows())
	}
}

func TestIntDateInterchange(t *testing.T) {
	tab, _ := NewTable(testSchema())
	// Int payload into Date column and Date payload into Int column.
	err := tab.Append(value.Row{value.Date(5), value.Float(0), value.Str(""), value.Int(7)})
	if err != nil {
		t.Fatalf("interchange append: %v", err)
	}
	if got := tab.Value(0, 0); got.Kind != catalog.Int || got.I != 5 {
		t.Errorf("Int column = %v", got)
	}
	if got := tab.Value(0, 3); got.Kind != catalog.Date || got.I != 7 {
		t.Errorf("Date column = %v", got)
	}
}

func TestDuplicatePKRollsBack(t *testing.T) {
	tab, _ := NewTable(testSchema())
	row := value.Row{value.Int(1), value.Float(0), value.Str("x"), value.Date(0)}
	if err := tab.Append(row); err != nil {
		t.Fatal(err)
	}
	err := tab.Append(value.Row{value.Int(1), value.Float(9), value.Str("y"), value.Date(9)})
	if err == nil || !strings.Contains(err.Error(), "duplicate primary key") {
		t.Fatalf("dup pk err = %v", err)
	}
	if tab.NumRows() != 1 {
		t.Errorf("NumRows after rollback = %d", tab.NumRows())
	}
	// The columnar slices must have been rolled back in lockstep.
	if got := tab.Value(0, 2); got.S != "x" {
		t.Errorf("row 0 corrupted: %v", got)
	}
	if err := tab.Append(value.Row{value.Int(2), value.Float(1), value.Str("z"), value.Date(1)}); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	if got := tab.Value(1, 2); got.S != "z" {
		t.Errorf("row 1 = %v", got)
	}
}

func TestLookupPK(t *testing.T) {
	tab, _ := NewTable(testSchema())
	for i := int64(0); i < 10; i++ {
		if err := tab.Append(value.Row{value.Int(i * 3), value.Float(0), value.Str(""), value.Date(0)}); err != nil {
			t.Fatal(err)
		}
	}
	r, ok := tab.LookupPK(9)
	if !ok || r != 3 {
		t.Errorf("LookupPK(9) = %d, %v", r, ok)
	}
	if _, ok := tab.LookupPK(10); ok {
		t.Error("LookupPK(10) found")
	}
	noPK := &catalog.TableSchema{Name: "n", Columns: []catalog.Column{{Name: "a", Type: catalog.Int}}}
	tab2, _ := NewTable(noPK)
	if _, ok := tab2.LookupPK(0); ok {
		t.Error("LookupPK on PK-less table found")
	}
}

func TestTypedSliceAccessors(t *testing.T) {
	tab, _ := NewTable(testSchema())
	_ = tab.Append(value.Row{value.Int(1), value.Float(1.5), value.Str("a"), value.Date(10)})
	if ints := tab.Ints(0); len(ints) != 1 || ints[0] != 1 {
		t.Errorf("Ints(0) = %v", ints)
	}
	if ints := tab.Ints(3); len(ints) != 1 || ints[0] != 10 {
		t.Errorf("Ints(3) = %v", ints)
	}
	if tab.Ints(1) != nil {
		t.Error("Ints on float column non-nil")
	}
	if fs := tab.Floats(1); len(fs) != 1 || fs[0] != 1.5 {
		t.Errorf("Floats(1) = %v", fs)
	}
	if tab.Floats(0) != nil {
		t.Error("Floats on int column non-nil")
	}
	if ss := tab.Strings(2); len(ss) != 1 || ss[0] != "a" {
		t.Errorf("Strings(2) = %v", ss)
	}
	if tab.Strings(0) != nil {
		t.Error("Strings on int column non-nil")
	}
}

func TestNumPages(t *testing.T) {
	tab, _ := NewTable(&catalog.TableSchema{Name: "p", Columns: []catalog.Column{{Name: "a", Type: catalog.Int}}})
	if tab.NumPages() != 0 {
		t.Errorf("empty NumPages = %d", tab.NumPages())
	}
	for i := 0; i < TuplesPerPage+1; i++ {
		_ = tab.Append(value.Row{value.Int(int64(i))})
	}
	if tab.NumPages() != 2 {
		t.Errorf("NumPages = %d, want 2", tab.NumPages())
	}
}

func TestDatabaseCreateAndValidate(t *testing.T) {
	cat := catalog.NewCatalog()
	db := NewDatabase(cat)
	dim, err := db.CreateTable(&catalog.TableSchema{
		Name:       "dim",
		Columns:    []catalog.Column{{Name: "d_id", Type: catalog.Int}},
		PrimaryKey: "d_id",
	})
	if err != nil {
		t.Fatal(err)
	}
	fact, err := db.CreateTable(&catalog.TableSchema{
		Name:       "fact",
		Columns:    []catalog.Column{{Name: "f_id", Type: catalog.Int}, {Name: "f_dim", Type: catalog.Int}},
		PrimaryKey: "f_id",
		Foreign:    []catalog.ForeignKey{{Column: "f_dim", RefTable: "dim"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = dim.Append(value.Row{value.Int(1)})
	_ = fact.Append(value.Row{value.Int(100), value.Int(1)})
	if err := db.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Dangling FK.
	_ = fact.Append(value.Row{value.Int(101), value.Int(99)})
	if err := db.Validate(); err == nil || !strings.Contains(err.Error(), "dangling") {
		t.Errorf("Validate dangling = %v", err)
	}
	if _, ok := db.Table("fact"); !ok {
		t.Error("Table(fact) missing")
	}
	if _, ok := db.Table("ghost"); ok {
		t.Error("Table(ghost) found")
	}
}

func TestCreateTableBadSchema(t *testing.T) {
	db := NewDatabase(catalog.NewCatalog())
	if _, err := db.CreateTable(&catalog.TableSchema{Name: ""}); err == nil {
		t.Error("bad schema accepted")
	}
}
