package storage

import (
	"math/rand"
	"strings"
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/value"
)

func rangeSchema(parts int, bounds []int64) *catalog.TableSchema {
	return &catalog.TableSchema{
		Name: "pt",
		Columns: []catalog.Column{
			{Name: "id", Type: catalog.Int},
			{Name: "k", Type: catalog.Int},
			{Name: "x", Type: catalog.Float},
			{Name: "s", Type: catalog.String},
		},
		PrimaryKey: "id",
		Partition:  &catalog.PartitionSpec{Column: "k", Kind: catalog.RangePartition, Partitions: parts, Bounds: bounds},
	}
}

func hashSchema(parts int) *catalog.TableSchema {
	s := rangeSchema(parts, nil)
	s.Partition.Kind = catalog.HashPartition
	return s
}

func fillRandom(t *testing.T, tab *Table, n int, seed int64) []value.Row {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rows := make([]value.Row, 0, n)
	for i := 0; i < n; i++ {
		r := value.Row{
			value.Int(int64(i)),
			value.Int(int64(rng.Intn(1000))),
			value.Float(rng.Float64()),
			value.Str(strings.Repeat("x", 1+rng.Intn(3))),
		}
		if err := tab.Append(r); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, r)
	}
	return rows
}

// TestPartitionRoutingRange pins the range routing rule: shard 0 below the
// first bound, shard i in [Bounds[i-1], Bounds[i]), last shard unbounded.
func TestPartitionRoutingRange(t *testing.T) {
	tab, err := NewTable(rangeSchema(3, []int64{100, 200}))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		key  int64
		want int
	}{
		{-5, 0}, {0, 0}, {99, 0}, {100, 1}, {150, 1}, {199, 1}, {200, 2}, {1 << 40, 2},
	}
	for _, c := range cases {
		if got, ok := tab.ShardOfKey(c.key); !ok || got != c.want {
			t.Errorf("ShardOfKey(%d) = %d, %v; want %d, true", c.key, got, ok, c.want)
		}
	}
}

// TestPartitionMajorRowIDs checks that global row ids are partition-major:
// each shard owns one contiguous span, spans tile [0, NumRows), and every
// row read back through the global api carries a key its shard owns.
func TestPartitionMajorRowIDs(t *testing.T) {
	for _, mk := range []func() *catalog.TableSchema{
		func() *catalog.TableSchema { return rangeSchema(4, []int64{250, 500, 750}) },
		func() *catalog.TableSchema { return hashSchema(4) },
	} {
		schema := mk()
		tab, err := NewTable(schema)
		if err != nil {
			t.Fatal(err)
		}
		fillRandom(t, tab, 1000, 7)
		if tab.Partitions() != 4 {
			t.Fatalf("Partitions() = %d", tab.Partitions())
		}
		next := 0
		total := 0
		for p := 0; p < 4; p++ {
			lo, hi := tab.PartitionSpan(p)
			if lo != next {
				t.Fatalf("%s shard %d span starts at %d, want %d", schema.Partition.Kind, p, lo, next)
			}
			if hi-lo != tab.PartitionRows(p) {
				t.Fatalf("shard %d span width %d != PartitionRows %d", p, hi-lo, tab.PartitionRows(p))
			}
			for r := lo; r < hi; r++ {
				key := tab.Value(r, 1).I
				if got, _ := tab.ShardOfKey(key); got != p {
					t.Fatalf("row %d key %d read from shard %d but routes to %d", r, key, p, got)
				}
			}
			next = hi
			total += hi - lo
		}
		if total != tab.NumRows() {
			t.Fatalf("spans cover %d rows, table has %d", total, tab.NumRows())
		}
	}
}

// TestPartitionedReadAPI checks Value/ReadRow/Row/Ints/Floats/Strings agree
// with each other on a partitioned table, and that every appended row is
// present exactly once.
func TestPartitionedReadAPI(t *testing.T) {
	tab, err := NewTable(hashSchema(3))
	if err != nil {
		t.Fatal(err)
	}
	rows := fillRandom(t, tab, 500, 11)
	if tab.NumRows() != len(rows) {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	ints, floats, strs := tab.Ints(1), tab.Floats(2), tab.Strings(3)
	if len(ints) != 500 || len(floats) != 500 || len(strs) != 500 {
		t.Fatalf("concat lengths %d/%d/%d", len(ints), len(floats), len(strs))
	}
	seen := make(map[int64]bool)
	for r := 0; r < tab.NumRows(); r++ {
		row := tab.Row(r)
		id := row[0].I
		if seen[id] {
			t.Fatalf("row id %d appears twice", id)
		}
		seen[id] = true
		want := rows[id]
		for c := range want {
			if row[c] != want[c] {
				t.Fatalf("row %d col %d = %v, want %v", r, c, row[c], want[c])
			}
		}
		if ints[r] != row[1].I || floats[r] != row[2].F || strs[r] != row[3].S {
			t.Fatalf("raw slices disagree with Value at row %d", r)
		}
	}
	if len(seen) != len(rows) {
		t.Fatalf("saw %d distinct rows, appended %d", len(seen), len(rows))
	}
}

// TestPartitionedLookupPK checks pk lookups resolve to the right global
// row id when the pk is not the partition key, and that duplicate pks are
// rejected across shard boundaries.
func TestPartitionedLookupPK(t *testing.T) {
	tab, err := NewTable(rangeSchema(4, []int64{250, 500, 750}))
	if err != nil {
		t.Fatal(err)
	}
	fillRandom(t, tab, 800, 13)
	for pk := int64(0); pk < 800; pk += 37 {
		rid, ok := tab.LookupPK(pk)
		if !ok {
			t.Fatalf("LookupPK(%d) missed", pk)
		}
		if got := tab.Value(rid, 0).I; got != pk {
			t.Fatalf("LookupPK(%d) -> row %d holding id %d", pk, rid, got)
		}
	}
	if _, ok := tab.LookupPK(9999); ok {
		t.Error("LookupPK found a pk that was never inserted")
	}
	// A duplicate pk must be rejected even when the row would land in a
	// different shard than the original.
	err = tab.Append(value.Row{value.Int(5), value.Int(999), value.Float(0), value.Str("d")})
	if err == nil || !strings.Contains(err.Error(), "duplicate primary key") {
		t.Fatalf("cross-shard duplicate pk not rejected: %v", err)
	}
	if tab.NumRows() != 800 {
		t.Fatalf("failed append mutated row count: %d", tab.NumRows())
	}
}

// TestPartitionedPKLookupDirect checks the direct-shard fast path when the
// table is partitioned on its primary key.
func TestPartitionedPKLookupDirect(t *testing.T) {
	schema := rangeSchema(2, []int64{500})
	schema.Partition.Column = "id"
	tab, err := NewTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	fillRandom(t, tab, 1000, 17)
	for pk := int64(0); pk < 1000; pk += 101 {
		rid, ok := tab.LookupPK(pk)
		if !ok || tab.Value(rid, 0).I != pk {
			t.Fatalf("LookupPK(%d) failed on pk-partitioned table", pk)
		}
	}
}

// TestPrunePartitions pins the pruning contract for both schemes.
func TestPrunePartitions(t *testing.T) {
	rt, err := NewTable(rangeSchema(4, []int64{100, 200, 300}))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		lo, hi int64
		want   []int
	}{
		{150, 150, []int{1}},
		{0, 99, []int{0}},
		{50, 250, []int{0, 1, 2}},
		{100, 100, []int{1}},
		{99, 100, []int{0, 1}},
		{-50, 1000, []int{0, 1, 2, 3}},
		{300, 301, []int{3}},
		{10, 5, []int{}},
	}
	for _, c := range cases {
		got, ok := rt.PrunePartitions("k", c.lo, c.hi)
		if !ok {
			t.Fatalf("range prune [%d,%d] not evaluated", c.lo, c.hi)
		}
		if len(got) != len(c.want) {
			t.Fatalf("prune [%d,%d] = %v, want %v", c.lo, c.hi, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("prune [%d,%d] = %v, want %v", c.lo, c.hi, got, c.want)
			}
		}
	}
	if _, ok := rt.PrunePartitions("x", 1, 1); ok {
		t.Error("pruned on a non-key column")
	}

	ht, err := NewTable(hashSchema(4))
	if err != nil {
		t.Fatal(err)
	}
	shards, ok := ht.PrunePartitions("k", 42, 42)
	if !ok || len(shards) != 1 {
		t.Fatalf("hash equality prune = %v, %v", shards, ok)
	}
	if want, _ := ht.ShardOfKey(42); shards[0] != want {
		t.Fatalf("hash prune picked shard %d, routing says %d", shards[0], want)
	}
	if _, ok := ht.PrunePartitions("k", 1, 2); ok {
		t.Error("hash partitioning pruned a range predicate")
	}

	ut, err := NewTable(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ut.PrunePartitions("id", 1, 1); ok {
		t.Error("unpartitioned table claimed to prune")
	}
}

// TestPartitionPageTiling verifies the invariant the engine's charge
// accounting rests on: summing the first-tuple-in-window page formula over
// the per-shard spans equals NumPages exactly, for any shard sizes.
func TestPartitionPageTiling(t *testing.T) {
	tab, err := NewTable(rangeSchema(4, []int64{130, 470, 733}))
	if err != nil {
		t.Fatal(err)
	}
	fillRandom(t, tab, 1017, 23)
	const per = TuplesPerPage
	var pages int64
	for p := 0; p < tab.Partitions(); p++ {
		lo, hi := tab.PartitionSpan(p)
		pages += int64((hi+per-1)/per - (lo+per-1)/per)
	}
	if pages != int64(tab.NumPages()) {
		t.Fatalf("per-shard page charges sum to %d, NumPages = %d", pages, tab.NumPages())
	}
}

// TestPartitionConcatInvalidation checks the concatenated column caches are
// rebuilt after an append.
func TestPartitionConcatInvalidation(t *testing.T) {
	tab, err := NewTable(hashSchema(2))
	if err != nil {
		t.Fatal(err)
	}
	fillRandom(t, tab, 10, 29)
	before := len(tab.Ints(0))
	if err := tab.Append(value.Row{value.Int(100), value.Int(5), value.Float(1), value.Str("z")}); err != nil {
		t.Fatal(err)
	}
	if got := len(tab.Ints(0)); got != before+1 {
		t.Fatalf("concat cache stale: %d ints after append, want %d", got, before+1)
	}
}

// TestSinglePartitionDegenerate checks a spec with Partitions == 1 behaves
// exactly like an unpartitioned table.
func TestSinglePartitionDegenerate(t *testing.T) {
	tab, err := NewTable(rangeSchema(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	fillRandom(t, tab, 50, 31)
	if tab.Partitions() != 1 {
		t.Fatalf("Partitions() = %d", tab.Partitions())
	}
	if lo, hi := tab.PartitionSpan(0); lo != 0 || hi != 50 {
		t.Fatalf("span = [%d,%d)", lo, hi)
	}
	if _, ok := tab.PrunePartitions("k", 1, 1); ok {
		t.Error("1-partition table claimed to prune")
	}
}
