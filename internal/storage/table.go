// Package storage implements the in-memory columnar table store that plays
// the role of the disk-resident heap files in the paper's experiments.
//
// Tables are stored column-wise in typed slices. A simulated page layout
// (TuplesPerPage) lets the cost model translate row counts into sequential
// and random page accesses, which is what differentiates the sequential
// scan and index-intersection plans at the center of the paper.
package storage

import (
	"fmt"

	"robustqo/internal/catalog"
	"robustqo/internal/value"
)

// TuplesPerPage is the simulated number of tuples stored per disk page.
// With ~100-byte tuples and 8 KB pages this matches the paper's era.
const TuplesPerPage = 80

// Table is a columnar in-memory table instance for a catalog schema.
type Table struct {
	schema *catalog.TableSchema
	cols   []columnData
	rows   int
	// pkIndex maps primary-key value to row id for O(1) FK lookups during
	// join-synopsis construction and indexed nested-loop joins on PKs.
	pkIndex map[int64]int
	pkCol   int // ordinal of PK column, -1 if none
}

type columnData struct {
	kind   catalog.Type
	ints   []int64 // Int and Date payloads
	floats []float64
	strs   []string
}

// NewTable creates an empty table for the schema.
func NewTable(schema *catalog.TableSchema) (*Table, error) {
	if schema == nil {
		return nil, fmt.Errorf("storage: nil schema")
	}
	t := &Table{
		schema: schema,
		cols:   make([]columnData, len(schema.Columns)),
		pkCol:  -1,
	}
	for i, c := range schema.Columns {
		t.cols[i].kind = c.Type
	}
	if schema.PrimaryKey != "" {
		t.pkCol = schema.ColumnIndex(schema.PrimaryKey)
		t.pkIndex = make(map[int64]int)
	}
	return t, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() *catalog.TableSchema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// NumRows returns the number of rows stored.
func (t *Table) NumRows() int { return t.rows }

// NumPages returns the simulated page count of the heap.
func (t *Table) NumPages() int {
	return (t.rows + TuplesPerPage - 1) / TuplesPerPage
}

// Append adds a row. The row must have one value per column with matching
// types; Int values are accepted for Date columns and vice versa.
func (t *Table) Append(row value.Row) error {
	if len(row) != len(t.cols) {
		return fmt.Errorf("storage: table %q: row has %d values, schema has %d columns", t.Name(), len(row), len(t.cols))
	}
	for i, v := range row {
		if !typeCompatible(t.cols[i].kind, v.Kind) {
			return fmt.Errorf("storage: table %q column %q: cannot store %s in %s column",
				t.Name(), t.schema.Columns[i].Name, v.Kind, t.cols[i].kind)
		}
	}
	for i, v := range row {
		c := &t.cols[i]
		switch c.kind {
		case catalog.Int, catalog.Date:
			c.ints = append(c.ints, v.I)
		case catalog.Float:
			c.floats = append(c.floats, v.F)
		case catalog.String:
			c.strs = append(c.strs, v.S)
		}
	}
	if t.pkCol >= 0 {
		pk := row[t.pkCol].I
		if _, dup := t.pkIndex[pk]; dup {
			// Roll back the partial append to keep columns consistent.
			for i := range t.cols {
				c := &t.cols[i]
				switch c.kind {
				case catalog.Int, catalog.Date:
					c.ints = c.ints[:len(c.ints)-1]
				case catalog.Float:
					c.floats = c.floats[:len(c.floats)-1]
				case catalog.String:
					c.strs = c.strs[:len(c.strs)-1]
				}
			}
			return fmt.Errorf("storage: table %q: duplicate primary key %d", t.Name(), pk)
		}
		t.pkIndex[pk] = t.rows
	}
	t.rows++
	return nil
}

func typeCompatible(col, val catalog.Type) bool {
	if col == val {
		return true
	}
	// Date and Int are interchangeable payloads.
	return (col == catalog.Date && val == catalog.Int) || (col == catalog.Int && val == catalog.Date)
}

// Value returns the value at (row, col).
func (t *Table) Value(row, col int) value.Value {
	c := &t.cols[col]
	switch c.kind {
	case catalog.Int:
		return value.Int(c.ints[row])
	case catalog.Date:
		return value.Date(c.ints[row])
	case catalog.Float:
		return value.Float(c.floats[row])
	default:
		return value.Str(c.strs[row])
	}
}

// ReadRow fills dst (which must have len == number of columns) with the
// values of the given row, avoiding allocation in scan loops.
func (t *Table) ReadRow(row int, dst value.Row) {
	for i := range t.cols {
		dst[i] = t.Value(row, i)
	}
}

// Row returns a freshly allocated copy of the given row.
func (t *Table) Row(row int) value.Row {
	out := make(value.Row, len(t.cols))
	t.ReadRow(row, out)
	return out
}

// Ints returns the raw payload slice of an Int or Date column. The caller
// must not modify it. Returns nil for other column types.
func (t *Table) Ints(col int) []int64 {
	c := &t.cols[col]
	if c.kind == catalog.Int || c.kind == catalog.Date {
		return c.ints
	}
	return nil
}

// Floats returns the raw payload slice of a Float column, or nil.
func (t *Table) Floats(col int) []float64 {
	c := &t.cols[col]
	if c.kind == catalog.Float {
		return c.floats
	}
	return nil
}

// Strings returns the raw payload slice of a String column, or nil.
func (t *Table) Strings(col int) []string {
	c := &t.cols[col]
	if c.kind == catalog.String {
		return c.strs
	}
	return nil
}

// LookupPK returns the row id holding the given primary-key value.
func (t *Table) LookupPK(pk int64) (int, bool) {
	if t.pkIndex == nil {
		return 0, false
	}
	r, ok := t.pkIndex[pk]
	return r, ok
}

// Database is a set of named tables governed by a catalog.
type Database struct {
	Catalog *catalog.Catalog
	tables  map[string]*Table
}

// NewDatabase returns an empty database over the catalog.
func NewDatabase(cat *catalog.Catalog) *Database {
	return &Database{Catalog: cat, tables: make(map[string]*Table)}
}

// CreateTable registers the schema in the catalog and creates the empty
// table instance.
func (db *Database) CreateTable(schema *catalog.TableSchema) (*Table, error) {
	if err := db.Catalog.AddTable(schema); err != nil {
		return nil, err
	}
	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	db.tables[schema.Name] = t
	return t, nil
}

// Table returns the named table instance.
func (db *Database) Table(name string) (*Table, bool) {
	t, ok := db.tables[name]
	return t, ok
}

// Validate checks catalog-level integrity (FK targets exist, graph is
// acyclic) and referential integrity of the stored data: every non-null
// foreign-key value must resolve in the referenced table.
func (db *Database) Validate() error {
	if err := db.Catalog.Validate(); err != nil {
		return err
	}
	for name, t := range db.tables {
		for _, fk := range t.schema.Foreign {
			ref := db.tables[fk.RefTable]
			if ref == nil {
				return fmt.Errorf("storage: table %q references table %q with no data instance", name, fk.RefTable)
			}
			col := t.schema.ColumnIndex(fk.Column)
			for _, v := range t.Ints(col) {
				if _, ok := ref.LookupPK(v); !ok {
					return fmt.Errorf("storage: table %q column %q: dangling foreign key %d into %q", name, fk.Column, v, fk.RefTable)
				}
			}
		}
	}
	return nil
}
