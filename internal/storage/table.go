// Package storage implements the in-memory columnar table store that plays
// the role of the disk-resident heap files in the paper's experiments.
//
// Tables are stored column-wise in typed slices. A simulated page layout
// (TuplesPerPage) lets the cost model translate row counts into sequential
// and random page accesses, which is what differentiates the sequential
// scan and index-intersection plans at the center of the paper.
//
// A table may be horizontally partitioned (catalog.PartitionSpec): rows
// live in per-shard segments, each with its own columnar chunks and
// primary-key index, while row ids stay global in partition-major order
// (shard 0's rows first, then shard 1's, ...). Every shard therefore
// occupies one contiguous global row-id interval, readers keep seeing a
// single logical table through the unchanged read API, and an
// unpartitioned table is simply the one-segment degenerate case.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"robustqo/internal/catalog"
	"robustqo/internal/value"
)

// TuplesPerPage is the simulated number of tuples stored per disk page.
// With ~100-byte tuples and 8 KB pages this matches the paper's era.
const TuplesPerPage = 80

// Table is a columnar in-memory table instance for a catalog schema,
// physically split into one segment per partition (one segment total when
// unpartitioned).
type Table struct {
	schema *catalog.TableSchema
	segs   []segment
	// bases[p] is the global row id of shard p's first row; maintained
	// eagerly on Append so reads never mutate it.
	bases []int
	rows  int
	pkCol int // ordinal of PK column, -1 if none
	// keyCol is the ordinal of the partition key, -1 when unpartitioned.
	keyCol int

	// concatMu guards the lazily built concatenated payload caches that
	// back Ints/Floats/Strings for partitioned tables.
	concatMu sync.Mutex
	concat   []columnData
	concatOK []bool
}

// segment holds one partition's columnar chunks and its local pk index
// (primary-key value to segment-local row id).
type segment struct {
	cols    []columnData
	rows    int
	pkIndex map[int64]int
}

type columnData struct {
	kind   catalog.Type
	ints   []int64 // Int and Date payloads
	floats []float64
	strs   []string
}

// NewTable creates an empty table for the schema.
func NewTable(schema *catalog.TableSchema) (*Table, error) {
	if schema == nil {
		return nil, fmt.Errorf("storage: nil schema")
	}
	n := 1
	keyCol := -1
	if p := schema.Partition; p != nil {
		n = p.Partitions
		keyCol = schema.ColumnIndex(p.Column)
		if keyCol < 0 {
			return nil, fmt.Errorf("storage: table %q partition key %q is not a column", schema.Name, p.Column)
		}
	}
	t := &Table{
		schema: schema,
		segs:   make([]segment, n),
		bases:  make([]int, n),
		pkCol:  -1,
		keyCol: keyCol,
	}
	for s := range t.segs {
		t.segs[s].cols = make([]columnData, len(schema.Columns))
		for i, c := range schema.Columns {
			t.segs[s].cols[i].kind = c.Type
		}
	}
	if schema.PrimaryKey != "" {
		t.pkCol = schema.ColumnIndex(schema.PrimaryKey)
		for s := range t.segs {
			t.segs[s].pkIndex = make(map[int64]int)
		}
	}
	return t, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() *catalog.TableSchema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// NumRows returns the number of rows stored.
func (t *Table) NumRows() int { return t.rows }

// NumPages returns the simulated page count of the heap.
func (t *Table) NumPages() int {
	return (t.rows + TuplesPerPage - 1) / TuplesPerPage
}

// Partitions returns the number of physical partitions (1 when the table
// is unpartitioned).
func (t *Table) Partitions() int { return len(t.segs) }

// PartitionSpec returns the table's partition declaration, nil when
// unpartitioned.
func (t *Table) PartitionSpec() *catalog.PartitionSpec { return t.schema.Partition }

// PartitionRows returns the row count of shard p.
func (t *Table) PartitionRows(p int) int { return t.segs[p].rows }

// PartitionSpan returns the contiguous global row-id interval [lo, hi)
// that shard p occupies — the property the scatter-gather engine and the
// partition-pruning pass are built on.
func (t *Table) PartitionSpan(p int) (lo, hi int) {
	return t.bases[p], t.bases[p] + t.segs[p].rows
}

// ShardOfKey returns the shard a row with the given partition-key value
// routes to. ok is false when the table is unpartitioned.
func (t *Table) ShardOfKey(key int64) (shard int, ok bool) {
	if t.keyCol < 0 || len(t.segs) == 1 {
		return 0, len(t.segs) > 1
	}
	return t.shardOf(key), true
}

// shardOf routes a partition-key value to its shard.
func (t *Table) shardOf(key int64) int {
	p := t.schema.Partition
	if p.Kind == catalog.RangePartition {
		// First shard whose upper bound exceeds key; the last shard is
		// unbounded above.
		return sort.Search(len(p.Bounds), func(i int) bool { return key < p.Bounds[i] })
	}
	return hashShard(key, len(t.segs))
}

// hashShard mixes the key (a finalizer in the splitmix64 family) before
// reducing mod n, so sequential keys spread across shards.
func hashShard(key int64, n int) int {
	x := uint64(key)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(n))
}

// PrunePartitions evaluates a closed-interval constraint lo <= column <= hi
// against the partition scheme and returns the shards that could hold
// matching rows. ok is false when the constraint says nothing about the
// physical layout: the table is unpartitioned, column is not the partition
// key, or the scheme cannot evaluate the interval (hash partitioning only
// prunes equality, lo == hi). The returned slice is ascending; it may be
// empty (an unsatisfiable range prunes every shard) and may cover all
// shards (no pruning, but the evaluation still applies).
func (t *Table) PrunePartitions(column string, lo, hi int64) (shards []int, ok bool) {
	spec := t.schema.Partition
	if spec == nil || len(t.segs) == 1 || spec.Column != column {
		return nil, false
	}
	if spec.Kind == catalog.HashPartition {
		if lo != hi {
			return nil, false
		}
		return []int{t.shardOf(lo)}, true
	}
	if lo > hi {
		return []int{}, true
	}
	first := t.shardOf(lo)
	last := t.shardOf(hi)
	shards = make([]int, 0, last-first+1)
	for p := first; p <= last; p++ {
		shards = append(shards, p)
	}
	return shards, true
}

// segOf locates the segment holding global row id row and returns the
// shard index and the segment-local row id.
func (t *Table) segOf(row int) (int, int) {
	if len(t.segs) == 1 {
		return 0, row
	}
	// Last shard whose base is <= row.
	p := sort.Search(len(t.bases), func(i int) bool { return t.bases[i] > row }) - 1
	return p, row - t.bases[p]
}

// Append adds a row. The row must have one value per column with matching
// types; Int values are accepted for Date columns and vice versa. On a
// partitioned table the row is routed to its shard, shifting the global
// ids of later shards' rows — load fully before building secondary
// indexes, exactly as with unpartitioned appends.
func (t *Table) Append(row value.Row) error {
	if len(row) != len(t.schema.Columns) {
		return fmt.Errorf("storage: table %q: row has %d values, schema has %d columns", t.Name(), len(row), len(t.schema.Columns))
	}
	for i, v := range row {
		if !typeCompatible(t.schema.Columns[i].Type, v.Kind) {
			return fmt.Errorf("storage: table %q column %q: cannot store %s in %s column",
				t.Name(), t.schema.Columns[i].Name, v.Kind, t.schema.Columns[i].Type)
		}
	}
	if t.pkCol >= 0 {
		pk := row[t.pkCol].I
		if _, dup := t.LookupPK(pk); dup {
			return fmt.Errorf("storage: table %q: duplicate primary key %d", t.Name(), pk)
		}
	}
	shard := 0
	if t.keyCol >= 0 && len(t.segs) > 1 {
		shard = t.shardOf(row[t.keyCol].I)
	}
	seg := &t.segs[shard]
	for i, v := range row {
		c := &seg.cols[i]
		switch c.kind {
		case catalog.Int, catalog.Date:
			c.ints = append(c.ints, v.I)
		case catalog.Float:
			c.floats = append(c.floats, v.F)
		case catalog.String:
			c.strs = append(c.strs, v.S)
		}
	}
	if t.pkCol >= 0 {
		seg.pkIndex[row[t.pkCol].I] = seg.rows
	}
	seg.rows++
	t.rows++
	for p := shard + 1; p < len(t.bases); p++ {
		t.bases[p]++
	}
	t.invalidateConcat()
	return nil
}

func typeCompatible(col, val catalog.Type) bool {
	if col == val {
		return true
	}
	// Date and Int are interchangeable payloads.
	return (col == catalog.Date && val == catalog.Int) || (col == catalog.Int && val == catalog.Date)
}

// Value returns the value at (row, col); row is a global row id.
func (t *Table) Value(row, col int) value.Value {
	p, local := t.segOf(row)
	c := &t.segs[p].cols[col]
	switch c.kind {
	case catalog.Int:
		return value.Int(c.ints[local])
	case catalog.Date:
		return value.Date(c.ints[local])
	case catalog.Float:
		return value.Float(c.floats[local])
	default:
		return value.Str(c.strs[local])
	}
}

// ReadRow fills dst (which must have len == number of columns) with the
// values of the given row, avoiding allocation in scan loops.
func (t *Table) ReadRow(row int, dst value.Row) {
	p, local := t.segOf(row)
	cols := t.segs[p].cols
	for i := range cols {
		c := &cols[i]
		switch c.kind {
		case catalog.Int:
			dst[i] = value.Int(c.ints[local])
		case catalog.Date:
			dst[i] = value.Date(c.ints[local])
		case catalog.Float:
			dst[i] = value.Float(c.floats[local])
		default:
			dst[i] = value.Str(c.strs[local])
		}
	}
}

// Row returns a freshly allocated copy of the given row.
func (t *Table) Row(row int) value.Row {
	out := make(value.Row, len(t.schema.Columns))
	t.ReadRow(row, out)
	return out
}

// invalidateConcat drops the concatenated payload caches after a mutation.
func (t *Table) invalidateConcat() {
	if len(t.segs) == 1 {
		return
	}
	t.concatMu.Lock()
	t.concat = nil
	t.concatOK = nil
	t.concatMu.Unlock()
}

// concatCol returns the column's payloads concatenated in global row-id
// (partition-major) order, built lazily and cached. Mutations (Append)
// invalidate the cache; loading must happen-before concurrent reads, the
// same contract the secondary indexes already rely on.
func (t *Table) concatCol(col int) *columnData {
	t.concatMu.Lock()
	defer t.concatMu.Unlock()
	if t.concat == nil {
		t.concat = make([]columnData, len(t.schema.Columns))
		t.concatOK = make([]bool, len(t.schema.Columns))
	}
	if !t.concatOK[col] {
		out := &t.concat[col]
		out.kind = t.segs[0].cols[col].kind
		switch out.kind {
		case catalog.Int, catalog.Date:
			out.ints = make([]int64, 0, t.rows)
			for s := range t.segs {
				out.ints = append(out.ints, t.segs[s].cols[col].ints...)
			}
		case catalog.Float:
			out.floats = make([]float64, 0, t.rows)
			for s := range t.segs {
				out.floats = append(out.floats, t.segs[s].cols[col].floats...)
			}
		case catalog.String:
			out.strs = make([]string, 0, t.rows)
			for s := range t.segs {
				out.strs = append(out.strs, t.segs[s].cols[col].strs...)
			}
		}
		t.concatOK[col] = true
	}
	return &t.concat[col]
}

// Ints returns the raw payload slice of an Int or Date column, indexed by
// global row id. The caller must not modify it. Returns nil for other
// column types.
func (t *Table) Ints(col int) []int64 {
	kind := t.segs[0].cols[col].kind
	if kind != catalog.Int && kind != catalog.Date {
		return nil
	}
	if len(t.segs) == 1 {
		return t.segs[0].cols[col].ints
	}
	return t.concatCol(col).ints
}

// Floats returns the raw payload slice of a Float column, or nil.
func (t *Table) Floats(col int) []float64 {
	if t.segs[0].cols[col].kind != catalog.Float {
		return nil
	}
	if len(t.segs) == 1 {
		return t.segs[0].cols[col].floats
	}
	return t.concatCol(col).floats
}

// Strings returns the raw payload slice of a String column, or nil.
func (t *Table) Strings(col int) []string {
	if t.segs[0].cols[col].kind != catalog.String {
		return nil
	}
	if len(t.segs) == 1 {
		return t.segs[0].cols[col].strs
	}
	return t.concatCol(col).strs
}

// LookupPK returns the global row id holding the given primary-key value.
// When the table is partitioned on its primary key the owning shard is
// computed directly; otherwise each shard's local index is consulted.
func (t *Table) LookupPK(pk int64) (int, bool) {
	if t.pkCol < 0 {
		return 0, false
	}
	if len(t.segs) == 1 {
		r, ok := t.segs[0].pkIndex[pk]
		return r, ok
	}
	if t.keyCol == t.pkCol {
		p := t.shardOf(pk)
		if local, ok := t.segs[p].pkIndex[pk]; ok {
			return t.bases[p] + local, true
		}
		return 0, false
	}
	for p := range t.segs {
		if local, ok := t.segs[p].pkIndex[pk]; ok {
			return t.bases[p] + local, true
		}
	}
	return 0, false
}

// Database is a set of named tables governed by a catalog.
type Database struct {
	Catalog *catalog.Catalog
	tables  map[string]*Table
}

// NewDatabase returns an empty database over the catalog.
func NewDatabase(cat *catalog.Catalog) *Database {
	return &Database{Catalog: cat, tables: make(map[string]*Table)}
}

// CreateTable registers the schema in the catalog and creates the empty
// table instance.
func (db *Database) CreateTable(schema *catalog.TableSchema) (*Table, error) {
	if err := db.Catalog.AddTable(schema); err != nil {
		return nil, err
	}
	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	db.tables[schema.Name] = t
	return t, nil
}

// Table returns the named table instance.
func (db *Database) Table(name string) (*Table, bool) {
	t, ok := db.tables[name]
	return t, ok
}

// Validate checks catalog-level integrity (FK targets exist, graph is
// acyclic) and referential integrity of the stored data: every non-null
// foreign-key value must resolve in the referenced table.
func (db *Database) Validate() error {
	if err := db.Catalog.Validate(); err != nil {
		return err
	}
	for name, t := range db.tables {
		for _, fk := range t.schema.Foreign {
			ref := db.tables[fk.RefTable]
			if ref == nil {
				return fmt.Errorf("storage: table %q references table %q with no data instance", name, fk.RefTable)
			}
			col := t.schema.ColumnIndex(fk.Column)
			for _, v := range t.Ints(col) {
				if _, ok := ref.LookupPK(v); !ok {
					return fmt.Errorf("storage: table %q column %q: dangling foreign key %d into %q", name, fk.Column, v, fk.RefTable)
				}
			}
		}
	}
	return nil
}
