package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestNewBetaValidation(t *testing.T) {
	cases := []struct {
		a, b float64
		ok   bool
	}{
		{1, 1, true},
		{0.5, 0.5, true},
		{10.5, 990.5, true},
		{0, 1, false},
		{1, 0, false},
		{-1, 2, false},
		{math.NaN(), 1, false},
		{1, math.Inf(1), false},
	}
	for _, c := range cases {
		_, err := NewBeta(c.a, c.b)
		if (err == nil) != c.ok {
			t.Errorf("NewBeta(%g, %g): err=%v, want ok=%v", c.a, c.b, err, c.ok)
		}
	}
}

func TestBetaUniformCDF(t *testing.T) {
	// Beta(1,1) is the uniform distribution: CDF(x) = x.
	d := Beta{Alpha: 1, Beta: 1}
	for _, x := range []float64{0, 0.1, 0.25, 0.5, 0.73, 0.999, 1} {
		if got := d.CDF(x); !almostEqual(got, x, 1e-12) {
			t.Errorf("Beta(1,1).CDF(%g) = %g, want %g", x, got, x)
		}
	}
}

func TestBetaClosedFormCDFs(t *testing.T) {
	// Beta(2,2): CDF(x) = 3x^2 - 2x^3.
	d22 := Beta{Alpha: 2, Beta: 2}
	for _, x := range []float64{0.1, 0.3, 0.5, 0.8, 0.95} {
		want := 3*x*x - 2*x*x*x
		if got := d22.CDF(x); !almostEqual(got, want, 1e-12) {
			t.Errorf("Beta(2,2).CDF(%g) = %g, want %g", x, got, want)
		}
	}
	// Jeffreys prior Beta(1/2,1/2): CDF(x) = (2/pi) asin(sqrt(x)).
	dj := Beta{Alpha: 0.5, Beta: 0.5}
	for _, x := range []float64{0.05, 0.2, 0.5, 0.7, 0.99} {
		want := 2 / math.Pi * math.Asin(math.Sqrt(x))
		if got := dj.CDF(x); !almostEqual(got, want, 1e-10) {
			t.Errorf("Beta(.5,.5).CDF(%g) = %g, want %g", x, got, want)
		}
	}
	// Beta(a,1): CDF(x) = x^a.
	da1 := Beta{Alpha: 3.5, Beta: 1}
	for _, x := range []float64{0.2, 0.6, 0.9} {
		want := math.Pow(x, 3.5)
		if got := da1.CDF(x); !almostEqual(got, want, 1e-12) {
			t.Errorf("Beta(3.5,1).CDF(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestBetaMoments(t *testing.T) {
	d := Beta{Alpha: 10.5, Beta: 90.5}
	if got, want := d.Mean(), 10.5/101.0; !almostEqual(got, want, 1e-15) {
		t.Errorf("Mean = %g, want %g", got, want)
	}
	wantVar := 10.5 * 90.5 / (101.0 * 101.0 * 102.0)
	if got := d.Variance(); !almostEqual(got, wantVar, 1e-15) {
		t.Errorf("Variance = %g, want %g", got, wantVar)
	}
	if got := d.StdDev(); !almostEqual(got, math.Sqrt(wantVar), 1e-15) {
		t.Errorf("StdDev = %g, want %g", got, math.Sqrt(wantVar))
	}
}

func TestBetaMode(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{2, 2, 0.5},
		{3, 1.5, 2.0 / 2.5},
		{0.5, 2, 0},
		{2, 0.5, 1},
		{0.5, 0.5, 0.5},
	}
	for _, c := range cases {
		d := Beta{Alpha: c.a, Beta: c.b}
		if got := d.Mode(); !almostEqual(got, c.want, 1e-15) {
			t.Errorf("Beta(%g,%g).Mode = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestBetaPDFIntegratesToCDF(t *testing.T) {
	// Trapezoidal integration of the pdf should match the cdf.
	d := Beta{Alpha: 10.5, Beta: 90.5}
	const steps = 200000
	h := 1.0 / steps
	sum := 0.0
	for i := 1; i < steps; i++ {
		x := float64(i) * h
		sum += d.PDF(x)
		if x == 0.25 || i == steps/4 {
			got := d.CDF(x)
			approx := sum * h
			if !almostEqual(got, approx, 1e-4) {
				t.Errorf("CDF(%g) = %g, integral %g", x, got, approx)
			}
		}
	}
	if total := sum * h; !almostEqual(total, 1, 1e-4) {
		t.Errorf("pdf integrates to %g, want 1", total)
	}
}

func TestBetaSurvivalComplement(t *testing.T) {
	d := Beta{Alpha: 50.5, Beta: 150.5}
	for _, x := range []float64{0.01, 0.2, 0.25, 0.5, 0.9} {
		if got, want := d.Survival(x), 1-d.CDF(x); !almostEqual(got, want, 1e-12) {
			t.Errorf("Survival(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestBetaQuantileInvertsCDF(t *testing.T) {
	dists := []Beta{
		{1, 1}, {0.5, 0.5}, {2, 5}, {10.5, 90.5}, {50.5, 150.5},
		{0.5, 1000.5}, {1000.5, 0.5}, {5.5, 5.5},
	}
	ps := []float64{0.001, 0.05, 0.2, 0.5, 0.8, 0.95, 0.999}
	for _, d := range dists {
		for _, p := range ps {
			x, err := d.Quantile(p)
			if err != nil {
				t.Fatalf("Quantile error: %v", err)
			}
			if back := d.CDF(x); !almostEqual(back, p, 1e-9) {
				t.Errorf("Beta(%g,%g): CDF(Quantile(%g)) = %g", d.Alpha, d.Beta, p, back)
			}
		}
	}
}

func TestBetaQuantileEdges(t *testing.T) {
	d := Beta{Alpha: 3, Beta: 7}
	if x, err := d.Quantile(0); err != nil || x != 0 {
		t.Errorf("Quantile(0) = %g, %v", x, err)
	}
	if x, err := d.Quantile(1); err != nil || x != 1 {
		t.Errorf("Quantile(1) = %g, %v", x, err)
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := d.Quantile(p); err == nil {
			t.Errorf("Quantile(%g): expected error", p)
		}
	}
}

func TestBetaPaperWorkedExample(t *testing.T) {
	// Section 3.4: 10 of 100 sample tuples satisfy the predicate under the
	// Jeffreys prior, so the posterior is Beta(10.5, 90.5). The paper reports
	// selectivity estimates of 7.8%, 10.1%, and 12.8% at confidence
	// thresholds 20%, 50%, and 80%.
	d := Beta{Alpha: 10.5, Beta: 90.5}
	cases := []struct{ p, want float64 }{
		{0.20, 0.078},
		{0.50, 0.101},
		{0.80, 0.128},
	}
	for _, c := range cases {
		got, err := d.Quantile(c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 0.0015 {
			t.Errorf("Quantile(%g) = %.4f, want about %.3f", c.p, got, c.want)
		}
	}
}

func TestBetaCDFMonotoneProperty(t *testing.T) {
	// Property: the CDF is non-decreasing for arbitrary valid shapes.
	f := func(aRaw, bRaw, x1Raw, x2Raw uint32) bool {
		a := 0.01 + float64(aRaw%100000)/100
		b := 0.01 + float64(bRaw%100000)/100
		x1 := float64(x1Raw) / float64(math.MaxUint32)
		x2 := float64(x2Raw) / float64(math.MaxUint32)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		d := Beta{Alpha: a, Beta: b}
		return d.CDF(x1) <= d.CDF(x2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBetaQuantileRoundTripProperty(t *testing.T) {
	// Property: CDF(Quantile(p)) == p for posterior-shaped parameters.
	f := func(kRaw, nRaw uint16, pRaw uint32) bool {
		n := 1 + int(nRaw%5000)
		k := int(kRaw) % (n + 1)
		p := (1 + float64(pRaw%999998)) / 1e6 // in (0, 1)
		d := Beta{Alpha: float64(k) + 0.5, Beta: float64(n-k) + 0.5}
		x, err := d.Quantile(p)
		if err != nil {
			return false
		}
		return math.Abs(d.CDF(x)-p) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBetaQuantileMonotoneInP(t *testing.T) {
	f := func(p1Raw, p2Raw uint32) bool {
		p1 := float64(p1Raw) / float64(math.MaxUint32)
		p2 := float64(p2Raw) / float64(math.MaxUint32)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		d := Beta{Alpha: 10.5, Beta: 90.5}
		x1, err1 := d.Quantile(p1)
		x2, err2 := d.Quantile(p2)
		return err1 == nil && err2 == nil && x1 <= x2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBetaPDFBoundaryBehaviour(t *testing.T) {
	// alpha < 1: density diverges at 0; alpha > 1: density 0 at 0.
	if got := (Beta{Alpha: 0.5, Beta: 2}).PDF(0); !math.IsInf(got, 1) {
		t.Errorf("Beta(.5,2).PDF(0) = %g, want +Inf", got)
	}
	if got := (Beta{Alpha: 2, Beta: 2}).PDF(0); got != 0 {
		t.Errorf("Beta(2,2).PDF(0) = %g, want 0", got)
	}
	if got := (Beta{Alpha: 1, Beta: 1}).PDF(0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Beta(1,1).PDF(0) = %g, want 1", got)
	}
	if got := (Beta{Alpha: 2, Beta: 0.5}).PDF(1); !math.IsInf(got, 1) {
		t.Errorf("Beta(2,.5).PDF(1) = %g, want +Inf", got)
	}
	if got := (Beta{Alpha: 1, Beta: 1}).PDF(-0.5); got != 0 {
		t.Errorf("PDF outside support = %g, want 0", got)
	}
}

func TestBetaCDFOutOfRange(t *testing.T) {
	d := Beta{Alpha: 2, Beta: 3}
	if got := d.CDF(-1); got != 0 {
		t.Errorf("CDF(-1) = %g", got)
	}
	if got := d.CDF(2); got != 1 {
		t.Errorf("CDF(2) = %g", got)
	}
	if got := d.CDF(math.NaN()); !math.IsNaN(got) {
		t.Errorf("CDF(NaN) = %g, want NaN", got)
	}
}

func TestQuantileBisectAgreesWithNewton(t *testing.T) {
	dists := []Beta{{0.5, 0.5}, {10.5, 90.5}, {0.5, 1000.5}, {50.5, 150.5}}
	ps := []float64{0.01, 0.2, 0.5, 0.8, 0.99}
	for _, d := range dists {
		for _, p := range ps {
			a, err1 := d.Quantile(p)
			b, err2 := d.QuantileBisect(p)
			if err1 != nil || err2 != nil {
				t.Fatalf("errors: %v, %v", err1, err2)
			}
			if math.Abs(a-b) > 1e-9 {
				t.Errorf("Beta(%g,%g) q(%g): newton %g vs bisect %g", d.Alpha, d.Beta, p, a, b)
			}
		}
	}
	if x, err := (Beta{Alpha: 2, Beta: 2}).QuantileBisect(0); err != nil || x != 0 {
		t.Errorf("bisect(0) = %g, %v", x, err)
	}
	if x, err := (Beta{Alpha: 2, Beta: 2}).QuantileBisect(1); err != nil || x != 1 {
		t.Errorf("bisect(1) = %g, %v", x, err)
	}
	if _, err := (Beta{Alpha: 2, Beta: 2}).QuantileBisect(-1); err == nil {
		t.Error("bisect(-1) accepted")
	}
}
