package stats

import (
	"fmt"
	"math"
)

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** seeded by SplitMix64). A dedicated generator keeps every
// experiment in the repository reproducible independent of changes to the
// standard library's math/rand sources, and lets samples, data generators,
// and workloads each carry their own stream.
//
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 expansion of the seed into the 256-bit state. SplitMix64
	// guarantees a non-zero state for any seed, which xoshiro requires.
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split returns a new generator seeded from the current one. Use it to give
// subsystems independent reproducible streams.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0, n), or an error if n <= 0.
func (r *RNG) Intn(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("stats: Intn bound %d must be positive", n)
	}
	return r.intn(n), nil
}

// intn is Intn for bounds the caller has already proven positive.
func (r *RNG) intn(n int) int {
	// Lemire's nearly-divisionless bounded generation, with rejection to
	// remove modulo bias.
	un := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// NormFloat64 returns a standard normal variate via the polar
// (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1) // i+1 >= 2: bound always positive
		p[i], p[j] = p[j], p[i]
	}
	return p
}
