// Package stats provides the probability machinery underlying robust
// cardinality estimation: the Beta distribution family (posterior of a
// binomial proportion), binomial sampling distributions, a deterministic
// random number generator, and summary statistics.
//
// Everything is implemented from scratch on top of math.Lgamma so that the
// module has no dependencies outside the standard library.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Beta is the Beta(Alpha, Beta) distribution on [0, 1].
//
// In the context of selectivity estimation, observing k successes in a
// sample of n tuples under a Beta(a, b) prior yields the posterior
// Beta(k+a, n-k+b); see core.Posterior.
type Beta struct {
	Alpha float64 // first shape parameter, > 0
	Beta  float64 // second shape parameter, > 0
}

// NewBeta returns a Beta distribution with the given shape parameters.
// It returns an error unless both parameters are positive and finite.
func NewBeta(alpha, beta float64) (Beta, error) {
	if !(alpha > 0) || math.IsInf(alpha, 0) || !(beta > 0) || math.IsInf(beta, 0) {
		return Beta{}, fmt.Errorf("stats: invalid Beta shape parameters (%g, %g)", alpha, beta)
	}
	return Beta{Alpha: alpha, Beta: beta}, nil
}

// Mean returns the expected value alpha / (alpha + beta).
func (d Beta) Mean() float64 { return d.Alpha / (d.Alpha + d.Beta) }

// Mode returns the mode of the distribution. For alpha, beta > 1 the mode is
// interior; for boundary cases it returns the appropriate endpoint (0.5 for
// the symmetric bimodal case alpha, beta < 1).
func (d Beta) Mode() float64 {
	a, b := d.Alpha, d.Beta
	switch {
	case a > 1 && b > 1:
		return (a - 1) / (a + b - 2)
	case a <= 1 && b > 1:
		return 0
	case a > 1 && b <= 1:
		return 1
	default:
		return 0.5
	}
}

// Variance returns the variance of the distribution.
func (d Beta) Variance() float64 {
	s := d.Alpha + d.Beta
	return d.Alpha * d.Beta / (s * s * (s + 1))
}

// StdDev returns the standard deviation of the distribution.
func (d Beta) StdDev() float64 { return math.Sqrt(d.Variance()) }

// LogPDF returns the natural log of the probability density at x.
// It returns -Inf outside (0, 1) when the density would be zero there.
func (d Beta) LogPDF(x float64) float64 {
	if x < 0 || x > 1 || math.IsNaN(x) {
		return math.Inf(-1)
	}
	if x == 0 {
		if d.Alpha < 1 {
			return math.Inf(1)
		}
		if d.Alpha == 1 {
			return -logBetaFunc(d.Alpha, d.Beta)
		}
		return math.Inf(-1)
	}
	if x == 1 {
		if d.Beta < 1 {
			return math.Inf(1)
		}
		if d.Beta == 1 {
			return -logBetaFunc(d.Alpha, d.Beta)
		}
		return math.Inf(-1)
	}
	return (d.Alpha-1)*math.Log(x) + (d.Beta-1)*math.Log1p(-x) - logBetaFunc(d.Alpha, d.Beta)
}

// PDF returns the probability density at x.
func (d Beta) PDF(x float64) float64 { return math.Exp(d.LogPDF(x)) }

// CDF returns P[X <= x], the regularized incomplete beta function I_x(a, b).
func (d Beta) CDF(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	return regIncBeta(d.Alpha, d.Beta, x)
}

// Survival returns P[X > x] = 1 - CDF(x), computed with better relative
// accuracy in the upper tail by exploiting I_x(a,b) = 1 - I_{1-x}(b,a).
func (d Beta) Survival(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 1
	case x >= 1:
		return 0
	}
	return regIncBeta(d.Beta, d.Alpha, 1-x)
}

// ErrBadProbability is returned by Quantile when p lies outside [0, 1].
var ErrBadProbability = errors.New("stats: probability outside [0, 1]")

// Quantile returns the p-th quantile, i.e. the value x with CDF(x) = p.
// This is the cdf-inversion at the heart of the confidence-threshold rule:
// the robust selectivity estimate is Quantile(T) of the posterior.
//
// It returns ErrBadProbability if p is outside [0, 1].
func (d Beta) Quantile(p float64) (float64, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN(), ErrBadProbability
	}
	switch p {
	case 0:
		return 0, nil
	case 1:
		return 1, nil
	}
	return d.quantile(p), nil
}

// quantile inverts the cdf using bisection refined by Newton steps. The
// bracket is maintained throughout so the Newton iteration can never
// escape; this keeps the inversion robust for extreme shape parameters
// (e.g. the Beta(0.5, 1000.5) posteriors arising from zero-match samples).
func (d Beta) quantile(p float64) float64 {
	lo, hi := 0.0, 1.0
	// Initial guess: the mean, clipped into the open interval.
	x := d.Mean()
	if x <= 0 || x >= 1 {
		x = 0.5
	}
	for iter := 0; iter < 200; iter++ {
		c := d.CDF(x)
		if c > p {
			hi = x
		} else {
			lo = x
		}
		if hi-lo < 1e-15 {
			break
		}
		// Newton step from the current point.
		pdf := d.PDF(x)
		var next float64
		if pdf > 0 && !math.IsInf(pdf, 0) {
			next = x - (c-p)/pdf
		} else {
			next = math.NaN()
		}
		if !(next > lo && next < hi) {
			next = 0.5 * (lo + hi) // fall back to bisection
		}
		if math.Abs(next-x) < 1e-16*math.Max(1, x) {
			x = next
			break
		}
		x = next
	}
	return x
}

// logBetaFunc returns ln B(a, b) = ln Γ(a) + ln Γ(b) - ln Γ(a+b).
func logBetaFunc(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// for 0 < x < 1 using the continued-fraction expansion (Numerical Recipes
// §6.4 form, evaluated with the modified Lentz algorithm). The symmetry
// I_x(a,b) = 1 - I_{1-x}(b,a) is applied so that the continued fraction is
// always evaluated in its rapidly-converging region.
func regIncBeta(a, b, x float64) float64 {
	if x > (a+1)/(a+b+2) {
		return 1 - regIncBeta(b, a, 1-x)
	}
	// Prefactor x^a (1-x)^b / (a B(a,b)), computed in log space.
	logPre := a*math.Log(x) + b*math.Log1p(-x) - math.Log(a) - logBetaFunc(a, b)
	return math.Exp(logPre) * betaCF(a, b, x)
}

// betaCF evaluates the continued fraction for the incomplete beta function
// via the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-15
		tiny    = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// QuantileBisect inverts the cdf by pure bisection, without the Newton
// acceleration used by Quantile. It exists as the ablation baseline for
// the inversion strategy (see BenchmarkBetaQuantileBisectionOnly); both
// must agree to high precision.
func (d Beta) QuantileBisect(p float64) (float64, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN(), ErrBadProbability
	}
	switch p {
	case 0:
		return 0, nil
	case 1:
		return 1, nil
	}
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 100; iter++ {
		mid := 0.5 * (lo + hi)
		if d.CDF(mid) > p {
			hi = mid
		} else {
			lo = mid
		}
		if hi-lo < 1e-14 {
			break
		}
	}
	return 0.5 * (lo + hi), nil
}
