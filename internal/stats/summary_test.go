package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 {
		t.Errorf("N = %d", s.N)
	}
	if !almostEqual(s.Mean, 2.5, 1e-12) {
		t.Errorf("Mean = %g", s.Mean)
	}
	if !almostEqual(s.Variance, 1.25, 1e-12) {
		t.Errorf("Variance = %g", s.Variance)
	}
	if !almostEqual(s.StdDev(), math.Sqrt(1.25), 1e-12) {
		t.Errorf("StdDev = %g", s.StdDev())
	}
	if s.Min != 1 || s.Max != 4 {
		t.Errorf("Min, Max = %g, %g", s.Min, s.Max)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Variance != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Variance != 0 || s.Min != 7 || s.Max != 7 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummarizeWeighted(t *testing.T) {
	// Weighting {1,3} as {3,1} equals unweighted {1,1,1,3}.
	got := SummarizeWeighted([]float64{1, 3}, []float64{3, 1})
	want := Summarize([]float64{1, 1, 1, 3})
	if !almostEqual(got.Mean, want.Mean, 1e-12) {
		t.Errorf("weighted mean %g, want %g", got.Mean, want.Mean)
	}
	if !almostEqual(got.Variance, want.Variance, 1e-12) {
		t.Errorf("weighted variance %g, want %g", got.Variance, want.Variance)
	}
}

func TestSummarizeWeightedZeroWeights(t *testing.T) {
	s := SummarizeWeighted([]float64{1, 2}, []float64{0, 0})
	if s.Mean != 0 || s.Variance != 0 || s.N != 2 {
		t.Errorf("zero-weight summary = %+v", s)
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(mean, 5, 1e-12) || !almostEqual(std, 2, 1e-12) {
		t.Errorf("MeanStd = %g, %g", mean, std)
	}
}

func TestSummarizeScaleInvarianceProperty(t *testing.T) {
	// Property: scaling data by c scales mean by c and variance by c^2.
	f := func(raw []uint16, cRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		c := 1 + float64(cRaw%50)
		xs := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			scaled[i] = c * xs[i]
		}
		a, b := Summarize(xs), Summarize(scaled)
		return almostEqual(b.Mean, c*a.Mean, 1e-6*(1+math.Abs(c*a.Mean))) &&
			almostEqual(b.Variance, c*c*a.Variance, 1e-6*(1+c*c*a.Variance))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummarizeVarianceNonNegativeProperty(t *testing.T) {
	f := func(raw []int16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		return Summarize(xs).Variance >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
