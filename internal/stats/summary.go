package stats

import "math"

// Summary holds the first two moments of a set of observations. It is used
// throughout the experiment harness to report the paper's two metrics:
// average query execution time and its standard deviation (the
// predictability metric of Section 5.2).
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // population variance (divide by N), as in the paper's
	// "variance in query execution times over a set of similar queries"
	Min float64
	Max float64
}

// StdDev returns the population standard deviation.
func (s Summary) StdDev() float64 { return math.Sqrt(s.Variance) }

// Summarize computes the summary of xs. An empty slice yields a zero
// Summary with N == 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return SummarizeWeighted(xs, nil)
}

// SummarizeWeighted computes a weighted summary; nil weights mean uniform.
// Weights are normalized internally, so only their ratios matter.
//
// Weighted summaries implement the paper's "assume any of the selectivities
// is equally likely" aggregation (Figure 6) and its generalizations.
func SummarizeWeighted(xs, ws []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	var wSum, mean float64
	minV, maxV := math.Inf(1), math.Inf(-1)
	for i, x := range xs {
		w := 1.0
		if ws != nil {
			w = ws[i]
		}
		wSum += w
		mean += w * x
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	if wSum == 0 {
		return Summary{N: len(xs), Min: minV, Max: maxV}
	}
	mean /= wSum
	var variance float64
	for i, x := range xs {
		w := 1.0
		if ws != nil {
			w = ws[i]
		}
		d := x - mean
		variance += w * d * d
	}
	variance /= wSum
	return Summary{N: len(xs), Mean: mean, Variance: variance, Min: minV, Max: maxV}
}

// MeanStd is a convenience returning the mean and population standard
// deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	s := Summarize(xs)
	return s.Mean, s.StdDev()
}
