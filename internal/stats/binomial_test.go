package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewBinomialValidation(t *testing.T) {
	if _, err := NewBinomial(-1, 0.5); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := NewBinomial(10, -0.1); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := NewBinomial(10, 1.1); err == nil {
		t.Error("p > 1 accepted")
	}
	if _, err := NewBinomial(10, math.NaN()); err == nil {
		t.Error("NaN p accepted")
	}
	if _, err := NewBinomial(0, 0.5); err != nil {
		t.Error("n = 0 rejected")
	}
}

func TestBinomialPMFSmallExact(t *testing.T) {
	// Binomial(4, 0.5): pmf = {1,4,6,4,1}/16.
	d := Binomial{N: 4, P: 0.5}
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for k, w := range want {
		if got := d.PMF(k); !almostEqual(got, w, 1e-12) {
			t.Errorf("PMF(%d) = %g, want %g", k, got, w)
		}
	}
	if got := d.PMF(-1); got != 0 {
		t.Errorf("PMF(-1) = %g", got)
	}
	if got := d.PMF(5); got != 0 {
		t.Errorf("PMF(5) = %g", got)
	}
}

func TestBinomialDegenerate(t *testing.T) {
	d0 := Binomial{N: 5, P: 0}
	if got := d0.PMF(0); got != 1 {
		t.Errorf("P=0: PMF(0) = %g", got)
	}
	if got := d0.PMF(1); got != 0 {
		t.Errorf("P=0: PMF(1) = %g", got)
	}
	if got := d0.CDF(0); got != 1 {
		t.Errorf("P=0: CDF(0) = %g", got)
	}
	d1 := Binomial{N: 5, P: 1}
	if got := d1.PMF(5); got != 1 {
		t.Errorf("P=1: PMF(5) = %g", got)
	}
	if got := d1.CDF(4); got != 0 {
		t.Errorf("P=1: CDF(4) = %g", got)
	}
	if got := d1.CDF(5); got != 1 {
		t.Errorf("P=1: CDF(5) = %g", got)
	}
}

func TestBinomialCDFMatchesPMFSum(t *testing.T) {
	d := Binomial{N: 100, P: 0.13}
	sum := 0.0
	for k := 0; k <= 100; k++ {
		sum += d.PMF(k)
		if got := d.CDF(k); !almostEqual(got, sum, 1e-10) {
			t.Fatalf("CDF(%d) = %g, pmf sum %g", k, got, sum)
		}
	}
	if !almostEqual(sum, 1, 1e-10) {
		t.Errorf("pmf sums to %g", sum)
	}
}

func TestBinomialMoments(t *testing.T) {
	d := Binomial{N: 1000, P: 0.0014}
	if got, want := d.Mean(), 1.4; !almostEqual(got, want, 1e-12) {
		t.Errorf("Mean = %g, want %g", got, want)
	}
	if got, want := d.Variance(), 1000*0.0014*0.9986; !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, want)
	}
}

func TestBinomialLargeNStable(t *testing.T) {
	// The paper's analytical model uses n up to 5000; check no overflow or
	// NaN appears and the pmf still sums to 1.
	d := Binomial{N: 5000, P: 0.0005}
	sum := 0.0
	for k := 0; k <= 5000; k++ {
		p := d.PMF(k)
		if math.IsNaN(p) || p < 0 {
			t.Fatalf("PMF(%d) = %g", k, p)
		}
		sum += p
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("pmf sums to %g", sum)
	}
}

func TestBinomialCDFMonotoneProperty(t *testing.T) {
	f := func(nRaw uint16, pRaw uint32, k1Raw, k2Raw uint16) bool {
		n := int(nRaw%2000) + 1
		p := float64(pRaw) / float64(math.MaxUint32)
		k1 := int(k1Raw) % (n + 1)
		k2 := int(k2Raw) % (n + 1)
		if k1 > k2 {
			k1, k2 = k2, k1
		}
		d := Binomial{N: n, P: p}
		return d.CDF(k1) <= d.CDF(k2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLogChoose(t *testing.T) {
	// C(10, 3) = 120.
	if got := math.Exp(logChoose(10, 3)); !almostEqual(got, 120, 1e-9) {
		t.Errorf("C(10,3) = %g", got)
	}
	if got := logChoose(5, 6); !math.IsInf(got, -1) {
		t.Errorf("logChoose(5,6) = %g, want -Inf", got)
	}
}
