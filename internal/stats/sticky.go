package stats

// Sticky wraps an RNG with sticky-error draws for bulk generation
// loops: the first invalid bound is recorded and every later draw
// returns zero, so generators check Err once per loop instead of
// plumbing an error return through every row literal (the same shape
// bufio.Scanner uses).
type Sticky struct {
	rng *RNG
	err error
}

// NewSticky wraps rng.
func NewSticky(rng *RNG) *Sticky { return &Sticky{rng: rng} }

// Intn returns a uniform value in [0, n); on a non-positive bound it
// records the error and returns 0.
func (s *Sticky) Intn(n int) int {
	if s.err != nil {
		return 0
	}
	v, err := s.rng.Intn(n)
	if err != nil {
		s.err = err
		return 0
	}
	return v
}

// Float64 returns a uniform value in [0, 1).
func (s *Sticky) Float64() float64 { return s.rng.Float64() }

// Err reports the first invalid draw, if any.
func (s *Sticky) Err() error { return s.err }
