package stats

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestRNGFloat64Uniformity(t *testing.T) {
	// Chi-square goodness of fit over 20 bins; threshold is the 99.9th
	// percentile of chi-square with 19 degrees of freedom (~43.8).
	r := NewRNG(7)
	const n, bins = 200000, 20
	counts := make([]int, bins)
	for i := 0; i < n; i++ {
		counts[int(r.Float64()*bins)]++
	}
	expected := float64(n) / bins
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 43.8 {
		t.Errorf("chi-square = %g, uniformity rejected", chi2)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v, err := r.Intn(7)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) produced only %d distinct values", len(seen))
	}
}

func TestRNGIntnErrorsOnBadBound(t *testing.T) {
	if _, err := NewRNG(1).Intn(0); err == nil {
		t.Error("Intn(0) did not return an error")
	}
	if _, err := NewRNG(1).Intn(-3); err == nil {
		t.Error("Intn(-3) did not return an error")
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %g", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("bad permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(9)
	s1 := r.Split()
	s2 := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams matched %d/100 draws", same)
	}
}

func TestRNGInt63NonNegative(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative value")
		}
	}
}

func TestMul64(t *testing.T) {
	hi, lo := mul64(math.MaxUint64, math.MaxUint64)
	// (2^64-1)^2 = 2^128 - 2^65 + 1.
	if hi != math.MaxUint64-1 || lo != 1 {
		t.Errorf("mul64 max*max = (%d, %d)", hi, lo)
	}
	hi, lo = mul64(1<<32, 1<<32)
	if hi != 1 || lo != 0 {
		t.Errorf("mul64 2^32*2^32 = (%d, %d)", hi, lo)
	}
}
