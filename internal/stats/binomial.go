package stats

import (
	"fmt"
	"math"
)

// Binomial is the Binomial(N, P) distribution: the number of successes in N
// independent trials each succeeding with probability P.
//
// In the analytical model of Section 5, the number of sample tuples that
// satisfy a predicate of true selectivity p is Binomial(n, p).
type Binomial struct {
	N int     // number of trials, >= 0
	P float64 // per-trial success probability in [0, 1]
}

// NewBinomial returns a Binomial distribution, validating parameters.
func NewBinomial(n int, p float64) (Binomial, error) {
	if n < 0 {
		return Binomial{}, fmt.Errorf("stats: negative binomial trial count %d", n)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return Binomial{}, fmt.Errorf("stats: binomial probability %g outside [0, 1]", p)
	}
	return Binomial{N: n, P: p}, nil
}

// Mean returns N * P.
func (d Binomial) Mean() float64 { return float64(d.N) * d.P }

// Variance returns N * P * (1 - P).
func (d Binomial) Variance() float64 { return float64(d.N) * d.P * (1 - d.P) }

// LogPMF returns the natural log of P[X = k].
func (d Binomial) LogPMF(k int) float64 {
	if k < 0 || k > d.N {
		return math.Inf(-1)
	}
	switch d.P {
	case 0:
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	case 1:
		if k == d.N {
			return 0
		}
		return math.Inf(-1)
	}
	return logChoose(d.N, k) + float64(k)*math.Log(d.P) + float64(d.N-k)*math.Log1p(-d.P)
}

// PMF returns P[X = k].
func (d Binomial) PMF(k int) float64 { return math.Exp(d.LogPMF(k)) }

// CDF returns P[X <= k], computed via the incomplete-beta identity
// P[X <= k] = I_{1-p}(n-k, k+1), which is numerically stable for large N.
func (d Binomial) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= d.N {
		return 1
	}
	if d.P == 0 {
		return 1
	}
	if d.P == 1 {
		return 0 // k < N here
	}
	return regIncBeta(float64(d.N-k), float64(k+1), 1-d.P)
}

// logChoose returns ln C(n, k) via log-gamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk - lnk
}
