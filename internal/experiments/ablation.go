package experiments

import (
	"fmt"

	"robustqo/internal/core"
	"robustqo/internal/stats"
)

// AblationRuleFigure goes beyond the paper: it reruns Experiment 1 end to
// end (real optimizer, real plans, simulated execution) with the three
// posterior-condensation rules — the paper's quantile rule at several
// thresholds, the posterior mean (the least-expected-cost family of
// Chu et al. [6, 7], for linear costs), and classical maximum likelihood
// (Acharya et al. [1]). Each rule becomes one (mean time, std dev) point.
//
// The point estimates of mean and ML cannot express risk preferences: in
// this workload they behave like a fixed mid-threshold, while the
// quantile rule spans the whole trade-off curve.
func AblationRuleFigure(cfg SystemConfig) (*Figure, error) {
	r, points, err := exp1Runner(cfg)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "ablation-rule",
		Title:  "Posterior Condensation Rules on Experiment 1 (beyond the paper)",
		XLabel: "average query time (s)",
		YLabel: "std dev query time (s)",
		Notes: []string{
			"quantile rule at several thresholds vs. the point rules",
			fmt.Sprintf("averaged over %d random %d-tuple samples", r.cfg.Samples, r.cfg.SampleSize),
		},
	}
	type ruleCase struct {
		label string
		mk    func(set int) (*core.BayesEstimator, error)
	}
	cases := []ruleCase{}
	for _, t := range []core.ConfidenceThreshold{0.05, 0.5, 0.8, 0.95} {
		t := t
		cases = append(cases, ruleCase{
			label: fmt.Sprintf("quantile %s", t),
			mk: func(set int) (*core.BayesEstimator, error) {
				return core.NewBayesEstimator(r.samples[set], t)
			},
		})
	}
	cases = append(cases,
		ruleCase{label: "posterior-mean", mk: func(set int) (*core.BayesEstimator, error) {
			e, err := core.NewBayesEstimator(r.samples[set], 0.5)
			if err != nil {
				return nil, err
			}
			e.Rule = core.RuleMean
			return e, nil
		}},
		ruleCase{label: "max-likelihood", mk: func(set int) (*core.BayesEstimator, error) {
			e, err := core.NewBayesEstimator(r.samples[set], 0.5)
			if err != nil {
				return nil, err
			}
			e.Rule = core.RuleML
			return e, nil
		}},
	)
	for _, c := range cases {
		var pooled []float64
		for _, pt := range points {
			for set := range r.samples {
				est, err := c.mk(set)
				if err != nil {
					return nil, err
				}
				secs, err := r.run(pt.q, est)
				if err != nil {
					return nil, err
				}
				pooled = append(pooled, secs)
			}
		}
		mean, sd := stats.MeanStd(pooled)
		fig.Series = append(fig.Series, Series{Label: c.label, Points: []Point{{X: mean, Y: sd}}})
	}
	return fig, nil
}
