package experiments

import (
	"fmt"
	"sort"
)

// Runner produces the figures for one experiment id.
type Runner func(cfg SystemConfig) ([]*Figure, error)

// Registry maps experiment ids (figure numbers) to their drivers.
// Analytic figures ignore the SystemConfig.
var Registry = map[string]Runner{
	"fig1": wrap1(func(SystemConfig) (*Figure, error) { return Fig1() }),
	"fig2": wrap1(func(SystemConfig) (*Figure, error) { return Fig2() }),
	"fig3": wrap1(func(SystemConfig) (*Figure, error) { return Fig3() }),
	"fig4": wrap1(func(SystemConfig) (*Figure, error) { return Fig4() }),
	"fig5": wrap1(func(SystemConfig) (*Figure, error) { return Fig5() }),
	"fig6": wrap1(func(SystemConfig) (*Figure, error) { return Fig6() }),
	"fig7": wrap1(func(SystemConfig) (*Figure, error) { return Fig7() }),
	"fig8": wrap1(func(SystemConfig) (*Figure, error) { return Fig8() }),
	"fig9": func(cfg SystemConfig) ([]*Figure, error) {
		a, b, err := Exp1Figures(cfg)
		if err != nil {
			return nil, err
		}
		return []*Figure{a, b}, nil
	},
	"fig10": func(cfg SystemConfig) ([]*Figure, error) {
		a, b, err := Exp2Figures(cfg)
		if err != nil {
			return nil, err
		}
		return []*Figure{a, b}, nil
	},
	"fig11": func(cfg SystemConfig) ([]*Figure, error) {
		a, b, err := Exp3Figures(cfg)
		if err != nil {
			return nil, err
		}
		return []*Figure{a, b}, nil
	},
	"fig12": func(cfg SystemConfig) ([]*Figure, error) {
		f, err := Exp4Figure(cfg, nil)
		if err != nil {
			return nil, err
		}
		return []*Figure{f}, nil
	},
	"ovh":           wrap1(OverheadFigure),
	"ablation-rule": wrap1(AblationRuleFigure),
}

func wrap1(f func(SystemConfig) (*Figure, error)) Runner {
	return func(cfg SystemConfig) ([]*Figure, error) {
		fig, err := f(cfg)
		if err != nil {
			return nil, err
		}
		return []*Figure{fig}, nil
	}
}

// IDs returns the registered experiment ids in a stable order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric-aware ordering: fig2 before fig10, ovh last.
		return idKey(out[i]) < idKey(out[j])
	})
	return out
}

func idKey(id string) string {
	var n int
	if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
		return fmt.Sprintf("a%02d", n)
	}
	return "z" + id
}

// Run executes one experiment by id.
func Run(id string, cfg SystemConfig) ([]*Figure, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(cfg)
}
