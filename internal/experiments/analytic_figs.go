package experiments

import (
	"fmt"

	"robustqo/internal/analytic"
	"robustqo/internal/core"
)

// AnalyticThresholds are the confidence thresholds used across the
// paper's analysis and evaluation (Sections 5 and 6).
var AnalyticThresholds = []core.ConfidenceThreshold{0.05, 0.20, 0.50, 0.80, 0.95}

// Fig1 reproduces Figure 1: execution cost of the two hypothetical plans
// as a function of query selectivity, crossing at 26%.
func Fig1() (*Figure, error) {
	p1, p2 := analytic.Figure1Plans()
	f := &Figure{
		ID:     "fig1",
		Title:  "Execution Costs for Two Hypothetical Plans",
		XLabel: "selectivity",
		YLabel: "execution cost",
		Notes:  []string{fmt.Sprintf("crossover at %.0f%% selectivity", 100*(p2.Fixed-p1.Fixed)/(p1.Slope-p2.Slope))},
	}
	s1 := Series{Label: "Plan 1"}
	s2 := Series{Label: "Plan 2"}
	for _, x := range seq(0, 1, 0.05) {
		s1.Points = append(s1.Points, Point{X: x, Y: p1.At(x)})
		s2.Points = append(s2.Points, Point{X: x, Y: p2.At(x)})
	}
	f.Series = []Series{s1, s2}
	return f, nil
}

// fig23Dists builds the Figure 2/3 cost distributions: the posterior from
// a 200-tuple sample with 50 matches pushed through each plan's cost
// function.
func fig23Dists() (analytic.CostDist, analytic.CostDist, error) {
	post, err := core.Jeffreys.Posterior(50, 200)
	if err != nil {
		return analytic.CostDist{}, analytic.CostDist{}, err
	}
	p1, p2 := analytic.Figure1Plans()
	return analytic.CostDist{Posterior: post, Cost: p1},
		analytic.CostDist{Posterior: post, Cost: p2}, nil
}

// Fig2 reproduces Figure 2: the probability density of each plan's
// execution cost.
func Fig2() (*Figure, error) {
	d1, d2, err := fig23Dists()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     "fig2",
		Title:  "Probability Density Function for Execution Cost",
		XLabel: "execution cost",
		YLabel: "probability density",
		Notes:  []string{"posterior from 50 of 200 sample tuples matching (Beta(50.5, 150.5))"},
	}
	s1 := Series{Label: "Plan 1"}
	s2 := Series{Label: "Plan 2"}
	for _, c := range seq(20, 45, 0.5) {
		s1.Points = append(s1.Points, Point{X: c, Y: d1.PDF(c)})
		s2.Points = append(s2.Points, Point{X: c, Y: d2.PDF(c)})
	}
	f.Series = []Series{s1, s2}
	return f, nil
}

// Fig3 reproduces Figure 3: the cumulative distribution of each plan's
// execution cost, whose crossing of the horizontal threshold lines picks
// the plan (preference flips near T = 65%).
func Fig3() (*Figure, error) {
	d1, d2, err := fig23Dists()
	if err != nil {
		return nil, err
	}
	c150, err := d1.Quantile(0.5)
	if err != nil {
		return nil, err
	}
	c180, err := d1.Quantile(0.8)
	if err != nil {
		return nil, err
	}
	c250, err := d2.Quantile(0.5)
	if err != nil {
		return nil, err
	}
	c280, err := d2.Quantile(0.8)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     "fig3",
		Title:  "Cumulative Probability for Execution Cost",
		XLabel: "execution cost",
		YLabel: "cumulative probability",
		Notes: []string{
			fmt.Sprintf("T=50%%: plan1 %.1f, plan2 %.1f (paper: 30.2, 31.5)", c150, c250),
			fmt.Sprintf("T=80%%: plan1 %.1f, plan2 %.1f (paper: 33.5, 31.9)", c180, c280),
		},
	}
	s1 := Series{Label: "Plan 1"}
	s2 := Series{Label: "Plan 2"}
	for _, c := range seq(20, 45, 0.5) {
		s1.Points = append(s1.Points, Point{X: c, Y: d1.CDF(c)})
		s2.Points = append(s2.Points, Point{X: c, Y: d2.CDF(c)})
	}
	f.Series = []Series{s1, s2}
	return f, nil
}

// Fig4 reproduces Figure 4: posterior densities under the uniform and
// Jeffreys priors for samples of 100 (10 matching) and 500 (50 matching)
// tuples — sample size matters, the prior does not.
func Fig4() (*Figure, error) {
	f := &Figure{
		ID:     "fig4",
		Title:  "Sample Size Matters, Prior Doesn't",
		XLabel: "selectivity",
		YLabel: "probability density",
	}
	cases := []struct {
		label string
		prior core.Prior
		k, n  int
	}{
		{"uniform n=100", core.Uniform, 10, 100},
		{"Jeffreys n=100", core.Jeffreys, 10, 100},
		{"uniform n=500", core.Uniform, 50, 500},
		{"Jeffreys n=500", core.Jeffreys, 50, 500},
	}
	for _, c := range cases {
		post, err := c.prior.Posterior(c.k, c.n)
		if err != nil {
			return nil, err
		}
		s := Series{Label: c.label}
		for _, x := range seq(0, 0.25, 0.005) {
			s.Points = append(s.Points, Point{X: x, Y: post.PDF(x)})
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Fig5 reproduces Figure 5: expected execution time versus true
// selectivity for five confidence thresholds, n = 1000, under the
// Section 5.1 cost model.
func Fig5() (*Figure, error) {
	return thresholdSweep("fig5", "Effect of the Confidence Threshold",
		analytic.Paper51Model(), 1000, AnalyticThresholds, seq(0, 0.01, 0.0005))
}

func thresholdSweep(id, title string, m analytic.TwoPlanModel, n int,
	thresholds []core.ConfidenceThreshold, sels []float64) (*Figure, error) {
	f := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "true selectivity",
		YLabel: "expected execution time (s)",
		Notes:  []string{fmt.Sprintf("sample size n=%d, crossover pc=%.4g", n, m.Crossover())},
	}
	for _, t := range thresholds {
		s := Series{Label: fmt.Sprintf("T=%g%%", float64(t)*100)}
		for _, p := range sels {
			out, err := m.Evaluate(p, n, core.Jeffreys, t)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: p, Y: out.Mean})
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Fig6 reproduces Figure 6: the performance/predictability trade-off —
// each threshold becomes one (mean time, std dev) point over the Figure-5
// workload of equally likely selectivities.
func Fig6() (*Figure, error) {
	m := analytic.Paper51Model()
	f := &Figure{
		ID:     "fig6",
		Title:  "Performance vs. Predictability Trade-off",
		XLabel: "average query time (s)",
		YLabel: "std dev of query time (s)",
		Notes:  []string{"one point per confidence threshold; selectivities 0–1% equally likely; n=1000"},
	}
	for _, t := range AnalyticThresholds {
		var outs []analytic.Outcome
		for _, p := range seq(0, 0.01, 0.0005) {
			o, err := m.Evaluate(p, 1000, core.Jeffreys, t)
			if err != nil {
				return nil, err
			}
			outs = append(outs, o)
		}
		mean, sd := analytic.WorkloadSummary(outs)
		f.Series = append(f.Series, Series{
			Label:  fmt.Sprintf("T=%g%%", float64(t)*100),
			Points: []Point{{X: mean, Y: sd}},
		})
	}
	return f, nil
}

// Fig7 reproduces Figure 7: expected execution time versus selectivity
// for sample sizes 100–5000 at T = 50%.
func Fig7() (*Figure, error) {
	m := analytic.Paper51Model()
	f := &Figure{
		ID:     "fig7",
		Title:  "Effect of Sample Size",
		XLabel: "true selectivity",
		YLabel: "expected execution time (s)",
		Notes:  []string{"confidence threshold fixed at 50%"},
	}
	for _, n := range []int{100, 250, 500, 1000, 5000} {
		s := Series{Label: fmt.Sprintf("n=%d", n)}
		for _, p := range seq(0, 0.01, 0.0005) {
			out, err := m.Evaluate(p, n, core.Jeffreys, 0.5)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: p, Y: out.Mean})
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Fig8 reproduces Figure 8: with the crossover pushed to ~5.2%
// selectivity, sampling works well regardless of the threshold; the pure
// plan cost lines are included as in the paper.
func Fig8() (*Figure, error) {
	m := analytic.HighCrossoverModel()
	f, err := thresholdSweep("fig8", "Crossover Point at Higher Selectivity",
		m, 1000, []core.ConfidenceThreshold{0.05, 0.50, 0.95}, seq(0, 0.20, 0.01))
	if err != nil {
		return nil, err
	}
	s1 := Series{Label: "Plan P1"}
	s2 := Series{Label: "Plan P2"}
	for _, p := range seq(0, 0.20, 0.01) {
		s1.Points = append(s1.Points, Point{X: p, Y: m.CostOf(analytic.StablePlan, p)})
		s2.Points = append(s2.Points, Point{X: p, Y: m.CostOf(analytic.RiskyPlan, p)})
	}
	f.Series = append(f.Series, s1, s2)
	return f, nil
}
