package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"robustqo/internal/core"
)

// smallConfig keeps the real-system experiments fast in tests while
// preserving every qualitative shape.
func smallConfig() SystemConfig {
	cfg := DefaultSystemConfig()
	cfg.Lines = 20000
	cfg.Parts = 10000
	cfg.FactRows = 30000
	cfg.Samples = 4
	return cfg
}

func seriesByLabel(t *testing.T, f *Figure, label string) Series {
	t.Helper()
	for _, s := range f.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("%s: no series %q (have %v)", f.ID, label, labels(f))
	return Series{}
}

func labels(f *Figure) []string {
	out := make([]string, len(f.Series))
	for i, s := range f.Series {
		out[i] = s.Label
	}
	return out
}

func TestFigureRenderAndCSV(t *testing.T) {
	f := &Figure{
		ID: "x", Title: "T", XLabel: "x", YLabel: "y",
		Notes: []string{"note"},
		Series: []Series{
			{Label: "a", Points: []Point{{1, 2}, {3, 4}}},
			{Label: "b,c", Points: []Point{{1, 5}}},
		},
	}
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: T ==", "note", "a", "b,c", "2", "4", "5", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := f.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	if !strings.Contains(csv, `"b,c"`) {
		t.Errorf("CSV did not escape comma label:\n%s", csv)
	}
	if !strings.Contains(csv, "x,a,1,2") {
		t.Errorf("CSV missing data row:\n%s", csv)
	}
}

func TestFormatNum(t *testing.T) {
	cases := map[float64]string{
		3:         "3",
		0.25:      "0.25",
		0.0000123: "1.2300e-05",
	}
	for in, want := range cases {
		if got := formatNum(in); got != want {
			t.Errorf("formatNum(%g) = %q, want %q", in, got, want)
		}
	}
	if got := formatNum(math.NaN()); got != "NaN" {
		t.Errorf("NaN = %q", got)
	}
}

func TestFig1CrossoverAt26Percent(t *testing.T) {
	f, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	p1 := seriesByLabel(t, f, "Plan 1")
	p2 := seriesByLabel(t, f, "Plan 2")
	// Plan 1 cheaper below 26%, plan 2 cheaper above.
	for i := range p1.Points {
		x := p1.Points[i].X
		d := p1.Points[i].Y - p2.Points[i].Y
		if x < 0.25 && d >= 0 {
			t.Errorf("at %g plan 1 not cheaper", x)
		}
		if x > 0.27 && d <= 0 {
			t.Errorf("at %g plan 2 not cheaper", x)
		}
	}
}

func TestFig2PDFMassConcentration(t *testing.T) {
	f, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	// Plan 2's density must be much more peaked than plan 1's.
	peak := func(s Series) float64 {
		m := 0.0
		for _, p := range s.Points {
			if p.Y > m {
				m = p.Y
			}
		}
		return m
	}
	if peak(seriesByLabel(t, f, "Plan 2")) < 3*peak(seriesByLabel(t, f, "Plan 1")) {
		t.Error("plan 2 density not appreciably more peaked")
	}
}

func TestFig3QuantileNotes(t *testing.T) {
	f, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(f.Notes, " ")
	for _, want := range []string{"30.2", "31.5", "33.5", "31.9"} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes missing paper value %s: %v", want, f.Notes)
		}
	}
	// CDFs are nondecreasing.
	for _, s := range f.Series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y < s.Points[i-1].Y-1e-12 {
				t.Fatalf("%s cdf decreased at %g", s.Label, s.Points[i].X)
			}
		}
	}
}

func TestFig4PriorsCloseSampleSizesDiffer(t *testing.T) {
	f, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	u100 := seriesByLabel(t, f, "uniform n=100")
	j100 := seriesByLabel(t, f, "Jeffreys n=100")
	j500 := seriesByLabel(t, f, "Jeffreys n=500")
	var maxPriorGap, maxSizeGap float64
	for i := range u100.Points {
		if d := math.Abs(u100.Points[i].Y - j100.Points[i].Y); d > maxPriorGap {
			maxPriorGap = d
		}
		if d := math.Abs(j100.Points[i].Y - j500.Points[i].Y); d > maxSizeGap {
			maxSizeGap = d
		}
	}
	if maxPriorGap*4 > maxSizeGap {
		t.Errorf("prior gap %g not much smaller than size gap %g", maxPriorGap, maxSizeGap)
	}
}

func TestFig5ThresholdShapes(t *testing.T) {
	f, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	t95 := seriesByLabel(t, f, "T=95%")
	t5 := seriesByLabel(t, f, "T=5%")
	// T=95 is the flat scan curve: nearly constant.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range t95.Points {
		lo = math.Min(lo, p.Y)
		hi = math.Max(hi, p.Y)
	}
	if hi-lo > 0.5 {
		t.Errorf("T=95 spread = %g", hi-lo)
	}
	// T=5 is cheap at zero selectivity and expensive at 1%.
	if t5.Points[0].Y > 10 {
		t.Errorf("T=5 at 0 selectivity = %g", t5.Points[0].Y)
	}
	// At 1% selectivity the occasional risky pick costs T=5 a premium
	// over the always-scan T=95 curve.
	last := t5.Points[len(t5.Points)-1]
	flat := t95.Points[len(t95.Points)-1]
	if last.Y <= flat.Y+0.5 {
		t.Errorf("T=5 at 1%% = %g, want above the scan's %g", last.Y, flat.Y)
	}
}

func TestFig6VarianceMonotone(t *testing.T) {
	f, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	// Series are in threshold order; std dev decreases.
	prev := math.Inf(1)
	for _, s := range f.Series {
		sd := s.Points[0].Y
		if sd > prev+1e-9 {
			t.Errorf("%s: std dev %g rose", s.Label, sd)
		}
		prev = sd
	}
	// The best mean occurs at a moderate threshold (T=50 or T=80), not an
	// extreme (Section 5.2.1's observation).
	bestLabel := ""
	best := math.Inf(1)
	for _, s := range f.Series {
		if m := s.Points[0].X; m < best {
			best = m
			bestLabel = s.Label
		}
	}
	if bestLabel != "T=80%" && bestLabel != "T=50%" {
		t.Errorf("best mean at %s", bestLabel)
	}
}

func TestFig7LargerSamplesBetter(t *testing.T) {
	f, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	avg := func(s Series) float64 {
		sum := 0.0
		for _, p := range s.Points {
			sum += p.Y
		}
		return sum / float64(len(s.Points))
	}
	n100 := avg(seriesByLabel(t, f, "n=100"))
	n5000 := avg(seriesByLabel(t, f, "n=5000"))
	if n5000 >= n100 {
		t.Errorf("n=5000 average %g not better than n=100 %g", n5000, n100)
	}
}

func TestFig8ThresholdsConverge(t *testing.T) {
	f, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// With the crossover at 5.2%, the three threshold curves nearly
	// coincide relative to the plan-cost scale (the Section 5.2.3 point).
	t5 := seriesByLabel(t, f, "T=5%")
	t95 := seriesByLabel(t, f, "T=95%")
	var maxGap float64
	for i := range t5.Points {
		if d := math.Abs(t5.Points[i].Y - t95.Points[i].Y); d > maxGap {
			maxGap = d
		}
	}
	if maxGap > 6 {
		t.Errorf("threshold gap = %g, want small relative to 35–155s costs", maxGap)
	}
}

func TestExp1ShapesMatchPaper(t *testing.T) {
	a, b, err := Exp1Figures(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	t95 := seriesByLabel(t, a, "T=95%")
	t5 := seriesByLabel(t, a, "T=5%")
	hist := seriesByLabel(t, a, "Histograms")
	// T=95: flat.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range t95.Points {
		lo = math.Min(lo, p.Y)
		hi = math.Max(hi, p.Y)
	}
	if (hi-lo)/hi > 0.1 {
		t.Errorf("T=95 not flat: [%g, %g]", lo, hi)
	}
	// T=5 beats T=95 at the lowest selectivity and loses at the highest.
	if t5.Points[0].Y >= t95.Points[0].Y {
		t.Error("T=5 not faster at zero selectivity")
	}
	if t5.Points[len(t5.Points)-1].Y <= t95.Points[len(t95.Points)-1].Y {
		t.Error("T=5 not slower at the top selectivity")
	}
	// Histograms track the risky plan: worst at the top selectivity.
	histLast := hist.Points[len(hist.Points)-1].Y
	if histLast <= t95.Points[len(t95.Points)-1].Y {
		t.Error("histograms not worse than the scan at high selectivity")
	}
	// Panel (b): variance decreases with threshold.
	prev := math.Inf(1)
	for _, label := range []string{"T=5%", "T=20%", "T=50%", "T=80%", "T=95%"} {
		sd := seriesByLabel(t, b, label).Points[0].Y
		if sd > prev+1e-9 {
			t.Errorf("%s std dev %g rose above %g", label, sd, prev)
		}
		prev = sd
	}
}

func TestExp2Runs(t *testing.T) {
	cfg := smallConfig()
	cfg.Thresholds = []core.ConfidenceThreshold{0.05, 0.95}
	cfg.Samples = 3
	a, b, err := Exp2Figures(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Series) != 3 { // 2 thresholds + histograms
		t.Errorf("fig10a series = %v", labels(a))
	}
	if len(b.Series) != 3 {
		t.Errorf("fig10b series = %v", labels(b))
	}
	// Selectivities span a nontrivial range.
	s := a.Series[0]
	if len(s.Points) < 4 {
		t.Fatalf("too few points: %d", len(s.Points))
	}
	first, last := s.Points[0].X, s.Points[len(s.Points)-1].X
	if first == last {
		t.Error("selectivity did not vary")
	}
	// All times positive.
	for _, ser := range a.Series {
		for _, p := range ser.Points {
			if p.Y <= 0 {
				t.Fatalf("%s: nonpositive time %g", ser.Label, p.Y)
			}
		}
	}
}

func TestExp3ShapesMatchPaper(t *testing.T) {
	cfg := smallConfig()
	// The semijoin strategy only beats the hash cascade once the fact
	// table is large enough that scanning it costs more than the fixed
	// per-dimension-key index seeks; stay at the default scale.
	cfg.FactRows = 100000
	cfg.Thresholds = []core.ConfidenceThreshold{0.05, 0.95}
	cfg.Samples = 3
	a, _, err := Exp3Figures(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t5 := seriesByLabel(t, a, "T=5%")
	t95 := seriesByLabel(t, a, "T=95%")
	hist := seriesByLabel(t, a, "Histograms")
	// Low threshold: fast at join fraction 0.
	if t5.Points[0].Y >= t95.Points[0].Y {
		t.Error("T=5 not faster at zero join fraction")
	}
	// Histograms always estimate 0.1% -> always the semijoin plan ->
	// slowest at the top fraction.
	last := len(hist.Points) - 1
	if hist.Points[last].Y <= t95.Points[last].Y {
		t.Error("histograms not slower than conservative at high fraction")
	}
}

func TestExp4SampleSizeTrend(t *testing.T) {
	cfg := smallConfig()
	fig, err := Exp4Figure(cfg, []int{50, 500})
	if err != nil {
		t.Fatal(err)
	}
	n50 := seriesByLabel(t, fig, "n=50")
	n500 := seriesByLabel(t, fig, "n=500")
	hist := seriesByLabel(t, fig, "Histograms")
	// The 50-tuple sample always scans: its std dev is (near) zero — the
	// Section 6.2.4 self-adjusting anomaly.
	if n50.Points[0].Y > 0.02 {
		t.Errorf("n=50 std dev = %g, want ~0 (always-scan)", n50.Points[0].Y)
	}
	if hist.Points[0].X <= 0 {
		t.Error("histogram point missing")
	}
	_ = n500
}

func TestOverheadFigure(t *testing.T) {
	cfg := smallConfig()
	fig, err := OverheadFigure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	histSeries := seriesByLabel(t, fig, "Histograms")
	sampling := seriesByLabel(t, fig, "Sampling")
	if histSeries.Points[0].Y <= 0 {
		t.Error("histogram timing nonpositive")
	}
	// Sampling time grows with sample size.
	if len(sampling.Points) < 2 {
		t.Fatal("too few sampling points")
	}
	if sampling.Points[len(sampling.Points)-1].Y <= sampling.Points[0].Y {
		t.Error("optimization time did not grow with sample size")
	}
	if len(fig.Notes) == 0 {
		t.Error("missing overhead ratio note")
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Errorf("IDs = %v", ids)
	}
	// Ordered numerically with ovh last.
	if ids[0] != "fig1" || ids[len(ids)-1] != "ovh" {
		t.Errorf("ordering = %v", ids)
	}
	for i := 1; i < len(ids)-1; i++ {
		if idKey(ids[i-1]) >= idKey(ids[i]) {
			t.Errorf("order violation at %v", ids[i])
		}
	}
	figs, err := Run("fig1", DefaultSystemConfig())
	if err != nil || len(figs) != 1 {
		t.Errorf("Run(fig1) = %v, %v", figs, err)
	}
	if _, err := Run("nope", DefaultSystemConfig()); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultSystemConfig()
	bad.Samples = 0
	if _, _, err := Exp1Figures(bad); err == nil {
		t.Error("zero samples accepted")
	}
	bad2 := DefaultSystemConfig()
	bad2.Thresholds = []core.ConfidenceThreshold{2}
	if _, _, err := Exp1Figures(bad2); err == nil {
		t.Error("bad threshold accepted")
	}
	bad3 := DefaultSystemConfig()
	bad3.Thresholds = nil
	if _, _, err := Exp1Figures(bad3); err == nil {
		t.Error("no thresholds accepted")
	}
}

func TestAblationRuleFigure(t *testing.T) {
	cfg := smallConfig()
	cfg.Samples = 3
	fig, err := AblationRuleFigure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 6 { // four thresholds + mean + ML
		t.Fatalf("series = %v", labels(fig))
	}
	get := func(label string) Point {
		return seriesByLabel(t, fig, label).Points[0]
	}
	q5 := get("quantile T=5%")
	q95 := get("quantile T=95%")
	mean := get("posterior-mean")
	ml := get("max-likelihood")
	// The quantile rule spans the risk spectrum; the point rules sit in
	// the middle of it (at or between the extremes on the variance axis).
	if !(q95.Y <= mean.Y+1e-9 && mean.Y <= q5.Y+1e-9) {
		t.Errorf("mean rule sd %g outside quantile span [%g, %g]", mean.Y, q95.Y, q5.Y)
	}
	if !(q95.Y <= ml.Y+1e-9 && ml.Y <= q5.Y+1e-9) {
		t.Errorf("ML rule sd %g outside quantile span [%g, %g]", ml.Y, q95.Y, q5.Y)
	}
	// And crucially, neither point rule can reach the conservative end.
	if mean.Y <= q95.Y+1e-9 || ml.Y <= q95.Y+1e-9 {
		t.Error("point rules matched the conservative variance — they should not be able to")
	}
}
