package experiments

import (
	"robustqo/internal/sample"
	"robustqo/internal/star"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
)

// Exp3Figures reproduces Figure 11: the four-table star join of Section
// 6.2.3. Each x-grid point requires its own database instance, because the
// join fraction is a property of the handcrafted fact distribution: every
// marginal stays at 10% (so the histogram optimizer always estimates
// 0.1%), while the true fraction of joining fact rows sweeps 0%–1% across
// the crossover region.
func Exp3Figures(cfg SystemConfig) (*Figure, *Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	fractions := seq(0, 0.01, 0.001)
	q := star.Query(3)

	figA := &Figure{
		ID:     "fig11a",
		Title:  "Four-Table Star Join Query — Selectivity vs Time",
		XLabel: "fraction of fact rows joining",
		YLabel: "average execution time (s)",
	}
	figB := &Figure{
		ID:     "fig11b",
		Title:  "Four-Table Star Join Query — Performance vs Predictability",
		XLabel: "average query time (s)",
		YLabel: "std dev query time (s)",
	}
	perT := make(map[int][]float64, len(cfg.Thresholds)) // pooled times per threshold index
	avgPerT := make(map[int]*Series)
	for ti, t := range cfg.Thresholds {
		avgPerT[ti] = &Series{Label: "T=" + formatNum(float64(t)*100) + "%"}
		_ = ti
	}
	histSeries := Series{Label: "Histograms"}
	var histAll []float64

	for fi, j := range fractions {
		db, err := star.Generate(star.Config{
			FactRows:     cfg.FactRows,
			DimRows:      cfg.DimRows,
			Dims:         3,
			JoinFraction: j,
			Seed:         cfg.Seed + uint64(fi)*7919,
		})
		if err != nil {
			return nil, nil, err
		}
		sel, err := exactStarFraction(db, q.Tables, j)
		if err != nil {
			return nil, nil, err
		}
		r, err := newSysRunner(db, cfg)
		if err != nil {
			return nil, nil, err
		}
		for ti, t := range cfg.Thresholds {
			times, err := r.bayesTimes(q, t)
			if err != nil {
				return nil, nil, err
			}
			mean, _ := stats.MeanStd(times)
			avgPerT[ti].Points = append(avgPerT[ti].Points, Point{X: sel, Y: mean})
			perT[ti] = append(perT[ti], times...)
		}
		secs, err := r.histTime(q)
		if err != nil {
			return nil, nil, err
		}
		histSeries.Points = append(histSeries.Points, Point{X: sel, Y: secs})
		histAll = append(histAll, secs)
	}
	for ti, t := range cfg.Thresholds {
		figA.Series = append(figA.Series, *avgPerT[ti])
		mean, sd := stats.MeanStd(perT[ti])
		figB.Series = append(figB.Series, Series{
			Label:  "T=" + formatNum(float64(t)*100) + "%",
			Points: []Point{{X: mean, Y: sd}},
		})
	}
	figA.Series = append(figA.Series, histSeries)
	hm, hs := stats.MeanStd(histAll)
	figB.Series = append(figB.Series, Series{Label: "Histograms", Points: []Point{{X: hm, Y: hs}}})
	return figA, figB, nil
}

// exactStarFraction measures the true joining fraction; the generator's
// mixture construction makes it land very close to the requested value,
// but the figures use the measured truth on the x axis.
func exactStarFraction(db *storage.Database, tables []string, fallback float64) (float64, error) {
	sel, err := sample.ExactFraction(db, tables, star.Query(3).Pred)
	if err != nil {
		return fallback, err
	}
	return sel, nil
}
