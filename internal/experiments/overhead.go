package experiments

import (
	"fmt"
	"time"

	"robustqo/internal/core"
	"robustqo/internal/optimizer"
	"robustqo/internal/sample"
	"robustqo/internal/stats"
	"robustqo/internal/tpch"
)

// OverheadFigure reproduces the Section 6.1 measurement: wall-clock query
// optimization time under the sampling-based estimator (for several
// sample sizes) versus the histogram baseline, on the Experiment-1 query.
// The paper reports roughly 30–40% more time for its unoptimized
// sampling prototype.
func OverheadFigure(cfg SystemConfig) (*Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	db, err := tpch.Generate(tpch.Config{Lines: cfg.Lines, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	r, err := newSysRunner(db, cfg)
	if err != nil {
		return nil, err
	}
	q := tpch.Experiment1Query(60)
	const reps = 50

	timeOpt := func(est core.Estimator) (float64, error) {
		opt, err := optimizer.New(r.ctx, est)
		if err != nil {
			return 0, err
		}
		// Warm up once, then time.
		if _, err := opt.Optimize(q); err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := opt.Optimize(q); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Microseconds()) / reps, nil
	}

	fig := &Figure{
		ID:     "ovh",
		Title:  "Estimation Overhead (Section 6.1)",
		XLabel: "sample size (0 = histograms)",
		YLabel: "optimization time (µs/query)",
	}
	histMicros, err := timeOpt(r.hist)
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, Series{
		Label:  "Histograms",
		Points: []Point{{X: 0, Y: histMicros}},
	})
	sampling := Series{Label: "Sampling"}
	rng := stats.NewRNG(cfg.Seed ^ 0xfeed)
	for _, n := range []int{100, 250, 500, 1000} {
		set, err := sample.BuildAll(db, n, rng.Split())
		if err != nil {
			return nil, err
		}
		est, err := core.NewBayesEstimator(set, 0.8)
		if err != nil {
			return nil, err
		}
		micros, err := timeOpt(est)
		if err != nil {
			return nil, err
		}
		sampling.Points = append(sampling.Points, Point{X: float64(n), Y: micros})
		if n == cfg.SampleSize {
			fig.Notes = append(fig.Notes, fmt.Sprintf(
				"n=%d sampling / histogram time ratio: %.2f (paper prototype: 1.3–1.4)",
				n, micros/histMicros))
		}
	}
	fig.Series = append(fig.Series, sampling)
	return fig, nil
}
