package experiments

import (
	"fmt"

	"robustqo/internal/core"
	"robustqo/internal/sample"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/tpch"
)

// exp1TargetSelectivities is the Figure 9 x-grid: 0% to 0.6% of lineitem
// rows in 0.05% steps (Section 6.2.1).
func exp1TargetSelectivities() []float64 {
	return seq(0, 0.006, 0.0005)
}

// shiftCalibrator measures and memoizes the true joint selectivity of the
// Experiment-1 predicate as a function of the date-window shift.
type shiftCalibrator struct {
	db    *storage.Database
	cache map[int64]float64
}

func newShiftCalibrator(db *storage.Database) *shiftCalibrator {
	return &shiftCalibrator{db: db, cache: make(map[int64]float64)}
}

func (c *shiftCalibrator) selOf(shift int64) (float64, error) {
	if v, ok := c.cache[shift]; ok {
		return v, nil
	}
	v, err := sample.ExactFraction(c.db, []string{"lineitem"}, tpch.Experiment1Predicate(shift))
	if err != nil {
		return 0, err
	}
	c.cache[shift] = v
	return v, nil
}

// calibrate finds the integer shift whose true selectivity best
// approaches the target from above, exactly as the paper "varied the
// degree of overlap so that the overall query selectivity was between 0%
// and 0.6%". Selectivity decreases monotonically in the shift beyond the
// receipt-delay mode.
func (c *shiftCalibrator) calibrate(target float64) (shift int64, actual float64, err error) {
	if target <= 0 {
		const far = 200 // no possible window overlap
		v, err := c.selOf(far)
		if err != nil {
			return 0, 0, err
		}
		return far, v, nil
	}
	lo, hi := int64(tpch.MaxReceiptDelay/2), int64(200)
	sLo, err := c.selOf(lo)
	if err != nil {
		return 0, 0, err
	}
	if target >= sLo {
		return lo, sLo, nil
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		v, err := c.selOf(mid)
		if err != nil {
			return 0, 0, err
		}
		if v >= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	v, err := c.selOf(lo)
	if err != nil {
		return 0, 0, err
	}
	return lo, v, nil
}

// exp1Runner builds the Experiment-1 database, runner, and calibrated
// query points.
func exp1Runner(cfg SystemConfig) (*sysRunner, []queryPoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	db, err := tpch.Generate(tpch.Config{Lines: cfg.Lines, Seed: cfg.Seed})
	if err != nil {
		return nil, nil, err
	}
	cal := newShiftCalibrator(db)
	var points []queryPoint
	for _, target := range exp1TargetSelectivities() {
		shift, sel, err := cal.calibrate(target)
		if err != nil {
			return nil, nil, err
		}
		points = append(points, queryPoint{sel: sel, q: tpch.Experiment1Query(shift)})
	}
	r, err := newSysRunner(db, cfg)
	if err != nil {
		return nil, nil, err
	}
	return r, points, nil
}

// Exp1Figures reproduces Figure 9: the single-table two-predicate
// lineitem query of Section 6.2.1, returning the (a) time-vs-selectivity
// and (b) performance-vs-predictability panels.
func Exp1Figures(cfg SystemConfig) (*Figure, *Figure, error) {
	r, points, err := exp1Runner(cfg)
	if err != nil {
		return nil, nil, err
	}
	return r.scenarioFigures("fig9a", "fig9b", "Two-Predicate lineitem Query", points)
}

// Exp4Figure reproduces Figure 12: Experiment 1 at T = 50% with the
// sample size swept from 50 to 2500 tuples; each size becomes one
// (mean, std-dev) point, with the histogram baseline for comparison.
func Exp4Figure(cfg SystemConfig, sizes []int) (*Figure, error) {
	if len(sizes) == 0 {
		sizes = []int{50, 100, 250, 500, 1000, 2500}
	}
	fig := &Figure{
		ID:     "fig12",
		Title:  "Effect of Sample Size (Experiment 4)",
		XLabel: "average execution time (s)",
		YLabel: "std dev execution time (s)",
		Notes:  []string{"confidence threshold fixed at 50%"},
	}
	var histPoint *Point
	for _, n := range sizes {
		c := cfg
		c.SampleSize = n
		c.Thresholds = []core.ConfidenceThreshold{0.5}
		r, points, err := exp1Runner(c)
		if err != nil {
			return nil, err
		}
		var pooled []float64
		for _, pt := range points {
			times, err := r.bayesTimes(pt.q, 0.5)
			if err != nil {
				return nil, err
			}
			pooled = append(pooled, times...)
		}
		mean, sd := stats.MeanStd(pooled)
		fig.Series = append(fig.Series, Series{
			Label:  fmt.Sprintf("n=%d", n),
			Points: []Point{{X: mean, Y: sd}},
		})
		if histPoint == nil {
			var histAll []float64
			for _, pt := range points {
				secs, err := r.histTime(pt.q)
				if err != nil {
					return nil, err
				}
				histAll = append(histAll, secs)
			}
			hm, hs := stats.MeanStd(histAll)
			histPoint = &Point{X: hm, Y: hs}
		}
	}
	if histPoint != nil {
		fig.Series = append(fig.Series, Series{Label: "Histograms", Points: []Point{*histPoint}})
	}
	return fig, nil
}
