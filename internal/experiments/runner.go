package experiments

import (
	"fmt"

	"robustqo/internal/core"
	"robustqo/internal/engine"
	"robustqo/internal/histogram"
	"robustqo/internal/optimizer"
	"robustqo/internal/sample"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
)

// SystemConfig scales the real-system experiments (Figures 9–12). The
// defaults reproduce the paper's setups at roughly 1/100 of its data
// volume; simulated execution times scale accordingly while every
// crossover and trade-off shape is preserved (see DESIGN.md).
type SystemConfig struct {
	Lines      int    // lineitem rows for Experiments 1–2 (paper: 6e6)
	Parts      int    // part rows for Experiment 2
	FactRows   int    // fact rows for Experiment 3 (paper: 1e7)
	DimRows    int    // dimension rows for Experiment 3 (paper: 1000)
	SampleSize int    // synopsis tuples (paper: 500)
	Samples    int    // independent sample sets averaged over (paper: 12–20)
	Seed       uint64 // base seed for data and samples
	Thresholds []core.ConfidenceThreshold
}

// DefaultSystemConfig returns the standard scaled-down configuration.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		Lines:      60_000,
		Parts:      20_000,
		FactRows:   100_000,
		DimRows:    1_000,
		SampleSize: sample.DefaultSize,
		Samples:    12,
		Seed:       2005,
		Thresholds: AnalyticThresholds,
	}
}

func (c *SystemConfig) validate() error {
	if c.Lines <= 0 || c.FactRows <= 0 || c.SampleSize <= 0 || c.Samples <= 0 {
		return fmt.Errorf("experiments: sizes and sample counts must be positive: %+v", *c)
	}
	if len(c.Thresholds) == 0 {
		return fmt.Errorf("experiments: no confidence thresholds configured")
	}
	for _, t := range c.Thresholds {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// sysRunner optimizes and executes queries against one database under
// several estimators, caching plan executions (execution is deterministic
// given a plan, so repeated choices across samples and thresholds reuse
// the measured time).
type sysRunner struct {
	db        *storage.Database
	ctx       *engine.Context
	cfg       SystemConfig
	samples   []*sample.Set
	hist      core.Estimator
	execCache map[string]float64
}

func newSysRunner(db *storage.Database, cfg SystemConfig) (*sysRunner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x5a5a5a5a)
	samples := make([]*sample.Set, cfg.Samples)
	for i := range samples {
		set, err := sample.BuildAll(db, cfg.SampleSize, rng.Split())
		if err != nil {
			return nil, err
		}
		samples[i] = set
	}
	hists, err := histogram.BuildAll(db)
	if err != nil {
		return nil, err
	}
	histEst, err := core.NewHistogramEstimator(hists, db.Catalog)
	if err != nil {
		return nil, err
	}
	return &sysRunner{
		db:        db,
		ctx:       ctx,
		cfg:       cfg,
		samples:   samples,
		hist:      histEst,
		execCache: make(map[string]float64),
	}, nil
}

// run optimizes the query with the estimator and returns the simulated
// execution time of the chosen plan.
func (r *sysRunner) run(q *optimizer.Query, est core.Estimator) (float64, error) {
	opt, err := optimizer.New(r.ctx, est)
	if err != nil {
		return 0, err
	}
	plan, err := opt.Optimize(q)
	if err != nil {
		return 0, err
	}
	key := plan.Explain()
	if secs, ok := r.execCache[key]; ok {
		return secs, nil
	}
	_, _, secs, err := engine.Run(r.ctx, plan.Root)
	if err != nil {
		return 0, err
	}
	r.execCache[key] = secs
	return secs, nil
}

// bayesTimes runs the query once per sample set at the given threshold
// and sample size, returning the execution time of each chosen plan.
// sampleSize <= 0 means the configured synopsis size.
func (r *sysRunner) bayesTimes(q *optimizer.Query, t core.ConfidenceThreshold) ([]float64, error) {
	times := make([]float64, 0, len(r.samples))
	for _, set := range r.samples {
		est, err := core.NewBayesEstimator(set, t)
		if err != nil {
			return nil, err
		}
		secs, err := r.run(q, est)
		if err != nil {
			return nil, err
		}
		times = append(times, secs)
	}
	return times, nil
}

// histTime runs the query once under the histogram baseline.
func (r *sysRunner) histTime(q *optimizer.Query) (float64, error) {
	return r.run(q, r.hist)
}

// scenarioFigures builds the paper's two-panel presentation for a set of
// query points: (a) average execution time versus true selectivity per
// threshold plus the histogram baseline, and (b) the
// performance/predictability scatter with one point per threshold.
type queryPoint struct {
	sel float64
	q   *optimizer.Query
}

func (r *sysRunner) scenarioFigures(idA, idB, title string, points []queryPoint) (*Figure, *Figure, error) {
	figA := &Figure{
		ID:     idA,
		Title:  title + " — Selectivity vs Time",
		XLabel: "query selectivity",
		YLabel: "average execution time (s)",
		Notes: []string{fmt.Sprintf("averaged over %d random %d-tuple samples",
			r.cfg.Samples, r.cfg.SampleSize)},
	}
	figB := &Figure{
		ID:     idB,
		Title:  title + " — Performance vs Predictability",
		XLabel: "average query time (s)",
		YLabel: "std dev query time (s)",
	}
	for _, t := range r.cfg.Thresholds {
		label := fmt.Sprintf("T=%g%%", float64(t)*100)
		avgSeries := Series{Label: label}
		var pooled []float64
		for _, pt := range points {
			times, err := r.bayesTimes(pt.q, t)
			if err != nil {
				return nil, nil, err
			}
			mean, _ := stats.MeanStd(times)
			avgSeries.Points = append(avgSeries.Points, Point{X: pt.sel, Y: mean})
			pooled = append(pooled, times...)
		}
		mean, sd := stats.MeanStd(pooled)
		figA.Series = append(figA.Series, avgSeries)
		figB.Series = append(figB.Series, Series{Label: label, Points: []Point{{X: mean, Y: sd}}})
	}
	histSeries := Series{Label: "Histograms"}
	var histAll []float64
	for _, pt := range points {
		secs, err := r.histTime(pt.q)
		if err != nil {
			return nil, nil, err
		}
		histSeries.Points = append(histSeries.Points, Point{X: pt.sel, Y: secs})
		histAll = append(histAll, secs)
	}
	figA.Series = append(figA.Series, histSeries)
	hm, hs := stats.MeanStd(histAll)
	figB.Series = append(figB.Series, Series{Label: "Histograms", Points: []Point{{X: hm, Y: hs}}})
	return figA, figB, nil
}
