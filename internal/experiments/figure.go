// Package experiments regenerates every figure of the paper's analysis
// and evaluation sections (Figures 1–12) plus the Section 6.1 estimation
// overhead measurement, as data series rendered to text tables or CSV.
//
// Figures 1–8 are closed-form (package analytic). Figures 9–12 run the
// full system: generate the workload data, build per-sample join
// synopses, optimize each query with the robust estimator at several
// confidence thresholds (and with the histogram baseline), execute the
// chosen plans, and report simulated execution times.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) measurement.
type Point struct {
	X, Y float64
}

// Series is one labeled curve or scatter set.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduced figure: a set of series over a shared x-axis.
type Figure struct {
	ID     string // e.g. "fig5"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Render writes the figure as an aligned text table, one row per distinct
// x value and one column per series. Missing values print as "-".
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "   %s\n", n); err != nil {
			return err
		}
	}
	// Collect the x grid.
	xsSeen := make(map[float64]bool)
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !xsSeen[p.X] {
				xsSeen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{formatNum(x)}
		for _, s := range f.Series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x { //qolint:allow-floatcmp — x comes verbatim from the same points
					cell = formatNum(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, cell := range row {
			parts[i] = fmt.Sprintf("%*s", widths[i], cell)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, "  ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the figure in long form: series,x,y.
func (f *Figure) CSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "figure,series,%s,%s\n", csvEscape(f.XLabel), csvEscape(f.YLabel)); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%s\n", f.ID, csvEscape(s.Label), formatNum(p.X), formatNum(p.Y)); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func formatNum(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 0.01:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.4e", v)
	}
}

// seq returns an inclusive arithmetic sequence.
func seq(lo, hi, step float64) []float64 {
	var out []float64
	for x := lo; x <= hi+1e-12; x += step {
		out = append(out, x)
	}
	return out
}
