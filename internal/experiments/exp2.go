package experiments

import (
	"robustqo/internal/sample"
	"robustqo/internal/tpch"
)

// Exp2Figures reproduces Figure 10: the three-table join
// lineitem ⋈ orders ⋈ part with a correlated two-attribute selection on
// part (Section 6.2.2). The window position of the second part predicate
// is swept so that the joint selectivity crosses the low crossover
// (0.1%–0.2% of lineitem rows) while both marginals stay at 2%.
func Exp2Figures(cfg SystemConfig) (*Figure, *Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	db, err := tpch.Generate(tpch.Config{
		Lines:           cfg.Lines,
		Parts:           cfg.Parts,
		PartCorrelation: 0.5,
		Seed:            cfg.Seed + 1,
	})
	if err != nil {
		return nil, nil, err
	}
	r, err := newSysRunner(db, cfg)
	if err != nil {
		return nil, nil, err
	}
	// Slide the p_attr2 window from fully aligned-tail overlap down to
	// disjoint. Integer positions give joint part selectivities of about
	// 0.5%, 0.45%, ..., 0.05%, 0.02% under PartCorrelation = 0.5; the
	// lineitem fraction equals the part fraction because foreign keys are
	// uniform.
	var points []queryPoint
	for x := int64(10); x <= int64(tpch.PartWindow)+2; x += 2 {
		q := tpch.Experiment2Query(x)
		sel, err := sample.ExactFraction(db, q.Tables, q.Pred)
		if err != nil {
			return nil, nil, err
		}
		points = append(points, queryPoint{sel: sel, q: q})
	}
	return r.scenarioFigures("fig10a", "fig10b", "Three-Table Join Query", points)
}
