package expr

import (
	"math"

	"robustqo/internal/catalog"
)

// Encoded-data predicate pushdown: SplitPushdown factors a scan predicate
// into single-column interval bounds that a compressed columnar scan can
// evaluate on encoded values (dictionary codes, bit-packed deltas)
// without decoding, plus a residual predicate for the surviving rows.
//
// The factoring is prefix-only and exact. Only the longest pushable
// PREFIX of the top-level AND conjuncts is extracted: the row path
// evaluates conjuncts left to right with short-circuiting, so running
// the residual (the remaining conjuncts, in order) on exactly the rows
// where the pushed prefix holds reproduces the row path's evaluation
// order, results, and error behavior. Pushed terms are comparisons of an
// Int/Date/String column against a same-family literal — value.Compare
// is exact and error-free for those pairs — so pushed evaluation can
// never diverge from row-domain evaluation.

// ColBound is one pushable conjunct reduced to a closed interval over a
// single column, identified by its ordinal in the scan's RelSchema.
// Int/Date bounds use [Lo, Hi]; String bounds use [StrLo, StrHi] with
// each side present only when its Has flag is set. An empty interval
// (Lo > Hi for ints) is valid and selects nothing.
type ColBound struct {
	Col                int
	Lo, Hi             int64
	StrLo, StrHi       string
	HasStrLo, HasStrHi bool
	IsStr              bool
}

// SplitPushdown splits pred into the longest pushable prefix of its
// top-level conjuncts — returned as per-column interval bounds — and the
// residual predicate covering the remaining conjuncts. A nil predicate
// yields (nil, nil); a predicate with no pushable prefix yields
// (nil, pred).
func SplitPushdown(pred Expr, schema RelSchema) ([]ColBound, Expr) {
	conjs := SplitConjuncts(pred)
	var bounds []ColBound
	i := 0
	for ; i < len(conjs); i++ {
		b, ok := pushableBound(conjs[i], schema)
		if !ok {
			break
		}
		bounds = append(bounds, b)
	}
	if i == 0 {
		return nil, pred
	}
	return bounds, Conj(conjs[i:]...)
}

// pushableBound reduces one conjunct to a ColBound if its shape allows
// exact encoded-domain evaluation.
func pushableBound(e Expr, schema RelSchema) (ColBound, bool) {
	switch t := e.(type) {
	case Cmp:
		if col, lit, ok := colAndLit(t.L, t.R); ok {
			return cmpBound(t.Op, col, lit, schema)
		}
		if col, lit, ok := colAndLit(t.R, t.L); ok {
			return cmpBound(flipCmp(t.Op), col, lit, schema)
		}
	case Between:
		col, ok := t.E.(Col)
		if !ok {
			return ColBound{}, false
		}
		lo, okLo := t.Lo.(Lit)
		hi, okHi := t.Hi.(Lit)
		if !okLo || !okHi {
			return ColBound{}, false
		}
		ord, kind, ok := resolveOrdinal(col, schema)
		if !ok {
			return ColBound{}, false
		}
		if kind == catalog.String {
			if lo.Val.Kind != catalog.String || hi.Val.Kind != catalog.String {
				return ColBound{}, false
			}
			return ColBound{Col: ord, IsStr: true,
				StrLo: lo.Val.S, HasStrLo: true,
				StrHi: hi.Val.S, HasStrHi: true}, true
		}
		if !intish(lo.Val.Kind) || !intish(hi.Val.Kind) {
			return ColBound{}, false
		}
		return ColBound{Col: ord, Lo: lo.Val.I, Hi: hi.Val.I}, true
	}
	return ColBound{}, false
}

func colAndLit(a, b Expr) (Col, Lit, bool) {
	col, okC := a.(Col)
	lit, okL := b.(Lit)
	return col, lit, okC && okL
}

// flipCmp mirrors an operator for the literal-op-column orientation.
func flipCmp(op CmpOp) CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	}
	return op
}

func resolveOrdinal(col Col, schema RelSchema) (int, catalog.Type, bool) {
	ord, err := schema.Resolve(col.Ref)
	if err != nil {
		return 0, 0, false
	}
	return ord, schema.Fields[ord].Type, true
}

// intish reports whether the literal kind compares exactly against an
// Int/Date column. Float literals are rejected: value.Compare would go
// through float conversion, and the encoded probe's integer interval
// could not reproduce that comparison exactly.
func intish(k catalog.Type) bool { return k == catalog.Int || k == catalog.Date }

func cmpBound(op CmpOp, col Col, lit Lit, schema RelSchema) (ColBound, bool) {
	ord, kind, ok := resolveOrdinal(col, schema)
	if !ok {
		return ColBound{}, false
	}
	if kind == catalog.String {
		if lit.Val.Kind != catalog.String {
			return ColBound{}, false
		}
		s := lit.Val.S
		switch op {
		// Strict string inequalities stay residual: a closed interval
		// would need the predecessor/successor string.
		case EQ:
			return ColBound{Col: ord, IsStr: true, StrLo: s, HasStrLo: true, StrHi: s, HasStrHi: true}, true
		case LE:
			return ColBound{Col: ord, IsStr: true, StrHi: s, HasStrHi: true}, true
		case GE:
			return ColBound{Col: ord, IsStr: true, StrLo: s, HasStrLo: true}, true
		}
		return ColBound{}, false
	}
	if kind != catalog.Int && kind != catalog.Date {
		return ColBound{}, false
	}
	if !intish(lit.Val.Kind) {
		return ColBound{}, false
	}
	v := lit.Val.I
	b := ColBound{Col: ord, Lo: math.MinInt64, Hi: math.MaxInt64}
	switch op {
	case EQ:
		b.Lo, b.Hi = v, v
	case LT:
		// Saturating endpoints: x < MinInt64 is unsatisfiable, which the
		// empty interval (Lo > Hi) encodes.
		if v == math.MinInt64 {
			b.Lo, b.Hi = 1, 0
		} else {
			b.Hi = v - 1
		}
	case LE:
		b.Hi = v
	case GT:
		if v == math.MaxInt64 {
			b.Lo, b.Hi = 1, 0
		} else {
			b.Lo = v + 1
		}
	case GE:
		b.Lo = v
	default: // NE has no single interval.
		return ColBound{}, false
	}
	return b, true
}
