package expr

import (
	"strings"
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/value"
)

func testRelSchema() RelSchema {
	return RelSchema{Fields: []Field{
		{Table: "t", Column: "a", Type: catalog.Int},
		{Table: "t", Column: "b", Type: catalog.Float},
		{Table: "t", Column: "s", Type: catalog.String},
		{Table: "t", Column: "d", Type: catalog.Date},
		{Table: "u", Column: "a", Type: catalog.Int},
	}}
}

func evalPred(t *testing.T, e Expr, row value.Row) bool {
	t.Helper()
	b, err := Bind(e, testRelSchema())
	if err != nil {
		t.Fatalf("Bind(%s): %v", e, err)
	}
	ok, err := b.Eval(row)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return ok
}

func sampleRow() value.Row {
	return value.Row{value.Int(10), value.Float(2.5), value.Str("hello world"), value.Date(100), value.Int(7)}
}

func TestResolve(t *testing.T) {
	rs := testRelSchema()
	if i, err := rs.Resolve(ColumnRef{Table: "t", Column: "b"}); err != nil || i != 1 {
		t.Errorf("Resolve(t.b) = %d, %v", i, err)
	}
	if i, err := rs.Resolve(ColumnRef{Column: "s"}); err != nil || i != 2 {
		t.Errorf("Resolve(s) = %d, %v", i, err)
	}
	if _, err := rs.Resolve(ColumnRef{Column: "a"}); err == nil {
		t.Error("ambiguous unqualified 'a' resolved")
	}
	if _, err := rs.Resolve(ColumnRef{Column: "zz"}); err == nil {
		t.Error("unknown column resolved")
	}
	if _, err := rs.Resolve(ColumnRef{Table: "x", Column: "a"}); err == nil {
		t.Error("wrong qualifier resolved")
	}
}

func TestSchemaForTableAndConcat(t *testing.T) {
	ts := &catalog.TableSchema{Name: "z", Columns: []catalog.Column{
		{Name: "c1", Type: catalog.Int}, {Name: "c2", Type: catalog.String},
	}}
	rs := SchemaForTable(ts)
	if len(rs.Fields) != 2 || rs.Fields[0].Table != "z" || rs.Fields[1].Column != "c2" {
		t.Errorf("SchemaForTable = %v", rs)
	}
	both := rs.Concat(testRelSchema())
	if len(both.Fields) != 7 {
		t.Errorf("Concat len = %d", len(both.Fields))
	}
	if !strings.Contains(both.String(), "z.c1") {
		t.Errorf("String = %s", both)
	}
}

func TestComparisonOps(t *testing.T) {
	row := sampleRow()
	cases := []struct {
		e    Expr
		want bool
	}{
		{Cmp{EQ, TC("t", "a"), IntLit(10)}, true},
		{Cmp{EQ, TC("t", "a"), IntLit(11)}, false},
		{Cmp{NE, TC("t", "a"), IntLit(11)}, true},
		{Cmp{LT, TC("t", "a"), IntLit(11)}, true},
		{Cmp{LE, TC("t", "a"), IntLit(10)}, true},
		{Cmp{GT, TC("t", "a"), IntLit(10)}, false},
		{Cmp{GE, TC("t", "a"), IntLit(10)}, true},
		{Cmp{LT, C("b"), FloatLit(3)}, true},
		{Cmp{EQ, C("s"), StrLit("hello world")}, true},
		{Cmp{GT, C("d"), DateLit(50)}, true},
	}
	for _, c := range cases {
		if got := evalPred(t, c.e, row); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestBetween(t *testing.T) {
	row := sampleRow()
	if !evalPred(t, Between{C("d"), DateLit(100), DateLit(200)}, row) {
		t.Error("inclusive lower bound failed")
	}
	if !evalPred(t, Between{C("d"), DateLit(0), DateLit(100)}, row) {
		t.Error("inclusive upper bound failed")
	}
	if evalPred(t, Between{C("d"), DateLit(101), DateLit(200)}, row) {
		t.Error("out-of-range BETWEEN matched")
	}
}

func TestBooleanConnectives(t *testing.T) {
	row := sampleRow()
	tr := Cmp{EQ, TC("t", "a"), IntLit(10)}
	fa := Cmp{EQ, TC("t", "a"), IntLit(0)}
	if !evalPred(t, Conj(tr, tr), row) || evalPred(t, Conj(tr, fa), row) {
		t.Error("AND wrong")
	}
	if !evalPred(t, Or{[]Expr{fa, tr}}, row) || evalPred(t, Or{[]Expr{fa, fa}}, row) {
		t.Error("OR wrong")
	}
	if !evalPred(t, Not{fa}, row) || evalPred(t, Not{tr}, row) {
		t.Error("NOT wrong")
	}
}

func TestConjFlattening(t *testing.T) {
	a := Cmp{EQ, C("s"), StrLit("x")}
	if Conj() != nil {
		t.Error("Conj() != nil")
	}
	if got := Conj(a); got.(Cmp) != a {
		t.Error("Conj(a) should unwrap")
	}
	nested := Conj(Conj(a, a), a, nil)
	and, ok := nested.(And)
	if !ok || len(and.Terms) != 3 {
		t.Errorf("Conj flattening = %v", nested)
	}
}

func TestArithmetic(t *testing.T) {
	row := sampleRow()
	// (a + 2) * 3 = 36
	e := Cmp{EQ, Arith{Mul, Arith{Add, TC("t", "a"), IntLit(2)}, IntLit(3)}, IntLit(36)}
	if !evalPred(t, e, row) {
		t.Error("integer arithmetic wrong")
	}
	// b / 2 = 1.25
	e2 := Cmp{EQ, Arith{Div, C("b"), IntLit(2)}, FloatLit(1.25)}
	if !evalPred(t, e2, row) {
		t.Error("float arithmetic wrong")
	}
	// date + int keeps date-ness and exactness: d + 5 = 105.
	e3 := Cmp{EQ, Arith{Add, C("d"), IntLit(5)}, DateLit(105)}
	if !evalPred(t, e3, row) {
		t.Error("date shift wrong")
	}
	// Division by zero is an error.
	b, err := Bind(Cmp{EQ, Arith{Div, TC("t", "a"), IntLit(0)}, IntLit(1)}, testRelSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Eval(row); err == nil {
		t.Error("integer division by zero succeeded")
	}
	b2, err := Bind(Cmp{EQ, Arith{Div, C("b"), FloatLit(0)}, FloatLit(1)}, testRelSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Eval(row); err == nil {
		t.Error("float division by zero succeeded")
	}
}

func TestContains(t *testing.T) {
	row := sampleRow()
	if !evalPred(t, Contains{C("s"), "lo wo"}, row) {
		t.Error("substring not found")
	}
	if evalPred(t, Contains{C("s"), "xyz"}, row) {
		t.Error("absent substring found")
	}
	b, _ := Bind(Contains{TC("t", "a"), "x"}, testRelSchema())
	if _, err := b.Eval(row); err == nil {
		t.Error("CONTAINS over int succeeded")
	}
}

func TestBindErrors(t *testing.T) {
	rs := testRelSchema()
	if _, err := Bind(C("zz"), rs); err == nil {
		t.Error("bare column as predicate accepted")
	}
	if _, err := Bind(Cmp{EQ, C("zz"), IntLit(1)}, rs); err == nil {
		t.Error("unknown column bound")
	}
	if _, err := Bind(IntLit(1), rs); err == nil {
		t.Error("literal as predicate accepted")
	}
	if _, err := Bind(And{}, rs); err == nil {
		t.Error("empty AND accepted")
	}
	if _, err := BindScalar(Cmp{EQ, IntLit(1), IntLit(1)}, rs); err == nil {
		t.Error("predicate as scalar accepted")
	}
}

func TestBindNilIsTrue(t *testing.T) {
	b, err := Bind(nil, testRelSchema())
	if err != nil {
		t.Fatal(err)
	}
	ok, err := b.Eval(sampleRow())
	if err != nil || !ok {
		t.Errorf("nil predicate = %v, %v", ok, err)
	}
}

func TestTypeMismatchAtEval(t *testing.T) {
	b, err := Bind(Cmp{EQ, C("s"), IntLit(1)}, testRelSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Eval(sampleRow()); err == nil {
		t.Error("string = int comparison succeeded")
	}
	b2, _ := Bind(Cmp{GT, Arith{Add, C("s"), IntLit(1)}, IntLit(0)}, testRelSchema())
	if _, err := b2.Eval(sampleRow()); err == nil {
		t.Error("string arithmetic succeeded")
	}
}

func TestColumnsCollection(t *testing.T) {
	e := mustParse("t.a = 1 AND (b + d > 5 OR NOT s CONTAINS 'x')")
	cols := Columns(e)
	if len(cols) != 4 {
		t.Fatalf("Columns = %v", cols)
	}
	if cols[0] != (ColumnRef{Table: "t", Column: "a"}) {
		t.Errorf("first ref = %v", cols[0])
	}
}

func TestSplitConjuncts(t *testing.T) {
	if SplitConjuncts(nil) != nil {
		t.Error("SplitConjuncts(nil) != nil")
	}
	single := Cmp{EQ, C("a"), IntLit(1)}
	if got := SplitConjuncts(single); len(got) != 1 {
		t.Errorf("single = %v", got)
	}
	three := Conj(single, single, single)
	if got := SplitConjuncts(three); len(got) != 3 {
		t.Errorf("three = %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	e := Conj(
		Between{C("d"), DateLit(1), DateLit(2)},
		Or{[]Expr{Not{Cmp{NE, C("a"), IntLit(3)}}, Contains{C("s"), "q"}}},
	)
	s := e.String()
	for _, want := range []string{"BETWEEN", "OR", "NOT", "<>", "CONTAINS", "AND"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func TestEvalShortRow(t *testing.T) {
	b, err := Bind(Cmp{EQ, TC("u", "a"), IntLit(7)}, testRelSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Eval(value.Row{value.Int(1)}); err == nil {
		t.Error("short row accepted")
	}
}

func TestInEvaluation(t *testing.T) {
	row := sampleRow() // t.a=10, b=2.5, s="hello world", d=100, u.a=7
	if !evalPred(t, mustParse("t.a IN (5, 10, 15)"), row) {
		t.Error("member not found")
	}
	if evalPred(t, mustParse("t.a IN (5, 15)"), row) {
		t.Error("non-member found")
	}
	if !evalPred(t, mustParse("s IN ('x', 'hello world')"), row) {
		t.Error("string member not found")
	}
	// Numeric cross-kind membership: d (Date 100) matches integer 100.
	if !evalPred(t, mustParse("d IN (100)"), row) {
		t.Error("date/int member not found")
	}
	// Type mismatch inside the list is an error.
	b, err := Bind(mustParse("t.a IN ('text')"), testRelSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Eval(row); err == nil {
		t.Error("int IN strings accepted")
	}
	// Empty lists rejected at bind time.
	if _, err := Bind(In{E: C("a")}, testRelSchema()); err == nil {
		t.Error("empty IN accepted")
	}
	// IN as scalar rejected.
	if _, err := BindScalar(mustParse("t.a IN (1)"), testRelSchema()); err == nil {
		t.Error("IN as scalar accepted")
	}
	// Columns are collected through IN.
	if cols := Columns(mustParse("t.a IN (1, 2)")); len(cols) != 1 || cols[0].Column != "a" {
		t.Errorf("Columns = %v", cols)
	}
}
