package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"robustqo/internal/catalog"
	"robustqo/internal/value"
)

// Parse parses a SQL-like predicate such as
//
//	l_shipdate BETWEEN DATE '1997-07-01' AND DATE '1997-09-30'
//	  AND (l_quantity + 2) * 3 >= 10
//	  AND p_comment CONTAINS 'promo'
//
// Supported: comparison operators (=, <>, !=, <, <=, >, >=), BETWEEN..AND,
// AND/OR/NOT, parentheses, + - * /, unary minus, integer/float/string
// literals, DATE 'YYYY-MM-DD' literals, and optionally table-qualified
// column names. Keywords are case-insensitive.
//
// Whether the result is a valid predicate (rather than a bare scalar) is
// checked by Bind, which performs name and type resolution.
func Parse(input string) (Expr, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("expr: unexpected trailing input at %q", p.peek().text)
	}
	return e, nil
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // punctuation operators
	tokKeyword
)

type token struct {
	kind tokKind
	text string // keywords upper-cased, idents as written
	pos  int
}

var keywords = map[string]bool{
	"AND": true, "OR": true, "NOT": true, "BETWEEN": true, "IN": true,
	"CONTAINS": true, "LIKE": true, "DATE": true, "TRUE": true, "FALSE": true,
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == '+' || c == '-' || c == '*' || c == '/' || c == ',':
			toks = append(toks, token{tokOp, string(c), i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, token{tokOp, input[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, ">", i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokOp, "<>", i})
				i += 2
			} else {
				return nil, fmt.Errorf("expr: stray '!' at offset %d", i)
			}
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= n {
					return nil, fmt.Errorf("expr: unterminated string starting at offset %d", i)
				}
				if input[j] == '\'' {
					// '' escapes a quote inside a string.
					if j+1 < n && input[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9' || c == '.':
			j := i
			seenDot := false
			for j < n && (input[j] >= '0' && input[j] <= '9' || input[j] == '.' && !seenDot) {
				if input[j] == '.' {
					seenDot = true
				}
				j++
			}
			if j == i || input[i:j] == "." {
				return nil, fmt.Errorf("expr: bad number at offset %d", i)
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{tokKeyword, upper, i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		default:
			return nil, fmt.Errorf("expr: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}
func (p *parser) atEnd() bool { return p.peek().kind == tokEOF }

func (p *parser) acceptOp(text string) bool {
	if t := p.peek(); t.kind == tokOp && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("expr: expected %s at offset %d, found %q", kw, p.peek().pos, p.peek().text)
	}
	return nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := []Expr{left}
	for p.acceptKeyword("OR") {
		t, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return Or{Terms: terms}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	terms := []Expr{left}
	for p.acceptKeyword("AND") {
		t, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return And{Terms: terms}, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Not{E: e}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]CmpOp{
	"=": EQ, "<>": NE, "<": LT, "<=": LE, ">": GT, ">=": GE,
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokOp {
		if op, ok := cmpOps[t.text]; ok {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return Cmp{Op: op, L: left, R: right}, nil
		}
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return Between{E: left, Lo: lo, Hi: hi}, nil
	}
	if p.acceptKeyword("IN") {
		if !p.acceptOp("(") {
			return nil, fmt.Errorf("expr: IN requires a parenthesized value list at offset %d", p.peek().pos)
		}
		var vals []value.Value
		for {
			elem, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			lit, ok := elem.(Lit)
			if !ok {
				return nil, fmt.Errorf("expr: IN list elements must be literals, got %s", elem)
			}
			vals = append(vals, lit.Val)
			if p.acceptOp(",") {
				continue
			}
			if p.acceptOp(")") {
				break
			}
			return nil, fmt.Errorf("expr: expected ',' or ')' in IN list at offset %d", p.peek().pos)
		}
		return In{E: left, Vals: vals}, nil
	}
	if p.acceptKeyword("CONTAINS") || p.acceptKeyword("LIKE") {
		t := p.peek()
		if t.kind != tokString {
			return nil, fmt.Errorf("expr: CONTAINS/LIKE requires a string literal at offset %d", t.pos)
		}
		p.next()
		pattern := t.text
		// LIKE patterns are restricted to the '%sub%' form the engine
		// supports; strip the wildcards.
		pattern = strings.TrimPrefix(pattern, "%")
		pattern = strings.TrimSuffix(pattern, "%")
		if strings.ContainsAny(pattern, "%_") {
			return nil, fmt.Errorf("expr: only '%%substring%%' LIKE patterns are supported, got %q", t.text)
		}
		return Contains{E: left, Substr: pattern}, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = Arith{Op: Add, L: left, R: r}
		case p.acceptOp("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = Arith{Op: Sub, L: left, R: r}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = Arith{Op: Mul, L: left, R: r}
		case p.acceptOp("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = Arith{Op: Div, L: left, R: r}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Constant-fold negated literals.
		if l, ok := e.(Lit); ok {
			v := l.Val
			if v.Kind == catalog.Float {
				v.F = -v.F
			} else {
				v.I = -v.I
			}
			return Lit{Val: v}, nil
		}
		return Arith{Op: Sub, L: IntLit(0), R: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("expr: bad float %q: %v", t.text, err)
			}
			return FloatLit(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("expr: bad integer %q: %v", t.text, err)
		}
		return IntLit(i), nil
	case tokString:
		p.next()
		return StrLit(t.text), nil
	case tokKeyword:
		if t.text == "DATE" {
			p.next()
			s := p.peek()
			if s.kind != tokString {
				return nil, fmt.Errorf("expr: DATE requires a 'YYYY-MM-DD' string at offset %d", s.pos)
			}
			p.next()
			days, err := value.ParseDate(s.text)
			if err != nil {
				return nil, err
			}
			return DateLit(days), nil
		}
		return nil, fmt.Errorf("expr: unexpected keyword %s at offset %d", t.text, t.pos)
	case tokIdent:
		p.next()
		if dot := strings.IndexByte(t.text, '.'); dot >= 0 {
			table, col := t.text[:dot], t.text[dot+1:]
			if table == "" || col == "" || strings.Contains(col, ".") {
				return nil, fmt.Errorf("expr: bad column reference %q", t.text)
			}
			return TC(table, col), nil
		}
		return C(t.text), nil
	case tokOp:
		if t.text == "(" {
			p.next()
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if !p.acceptOp(")") {
				return nil, fmt.Errorf("expr: missing ')' at offset %d", p.peek().pos)
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("expr: unexpected token %q at offset %d", t.text, t.pos)
}
