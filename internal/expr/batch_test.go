package expr

import (
	"fmt"
	"testing"

	"robustqo/internal/stats"
	"robustqo/internal/value"
)

// intn draws from [0, n); bounds here are always positive, so the error
// path is unreachable.
func intn(rng *stats.RNG, n int) int {
	v, _ := rng.Intn(n)
	return v
}

// batchColumns builds n rows of the testRelSchema shape as column vectors
// plus the same data as rows, so batch and row evaluation can be compared
// on identical inputs.
func batchColumns(rng *stats.RNG, n int) ([][]value.Value, []value.Row) {
	words := []string{"hello world", "alpha", "robust plan", "hello", ""}
	cols := make([][]value.Value, 5)
	rows := make([]value.Row, n)
	for r := 0; r < n; r++ {
		row := value.Row{
			value.Int(int64(intn(rng, 20)) - 5),
			value.Float(rng.Float64()*10 - 5),
			value.Str(words[intn(rng, len(words))]),
			value.Date(int64(intn(rng, 50))),
			value.Int(int64(intn(rng, 10))),
		}
		rows[r] = row
		for c, v := range row {
			cols[c] = append(cols[c], v)
		}
	}
	return cols, rows
}

// batchPredCases enumerates predicate shapes covering every vectorized
// node: comparisons, BETWEEN, AND/OR/NOT nesting, CONTAINS, IN, and
// arithmetic inside comparisons.
func batchPredCases() []Expr {
	return []Expr{
		Cmp{Op: LT, L: TC("t", "a"), R: IntLit(5)},
		Cmp{Op: GE, L: C("b"), R: FloatLit(0)},
		Cmp{Op: EQ, L: TC("u", "a"), R: IntLit(3)},
		Cmp{Op: NE, L: C("d"), R: IntLit(25)},
		Between{E: TC("t", "a"), Lo: IntLit(-2), Hi: IntLit(8)},
		Between{E: C("d"), Lo: TC("t", "a"), Hi: Arith{Op: Add, L: TC("t", "a"), R: IntLit(30)}},
		Conj(
			Cmp{Op: GT, L: TC("t", "a"), R: IntLit(0)},
			Cmp{Op: LT, L: C("b"), R: FloatLit(3)},
		),
		Or{Terms: []Expr{
			Cmp{Op: LT, L: TC("t", "a"), R: IntLit(-3)},
			Cmp{Op: GT, L: C("d"), R: IntLit(40)},
			Contains{E: C("s"), Substr: "hello"},
		}},
		Not{E: Cmp{Op: LE, L: TC("t", "a"), R: IntLit(7)}},
		Not{E: Or{Terms: []Expr{
			Cmp{Op: LT, L: TC("t", "a"), R: IntLit(2)},
			Between{E: C("d"), Lo: IntLit(10), Hi: IntLit(20)},
		}}},
		In{E: TC("u", "a"), Vals: []value.Value{value.Int(1), value.Int(4), value.Int(8)}},
		Cmp{Op: GT, L: Arith{Op: Mul, L: TC("t", "a"), R: IntLit(2)}, R: Arith{Op: Sub, L: C("d"), R: IntLit(5)}},
	}
}

// TestEvalBatchAgreesWithEval: for every predicate shape, the batch
// evaluator over full and partial selection vectors must select exactly
// the rows the row-at-a-time evaluator accepts.
func TestEvalBatchAgreesWithEval(t *testing.T) {
	rng := stats.NewRNG(777)
	schema := testRelSchema()
	for ci, e := range batchPredCases() {
		b, err := Bind(e, schema)
		if err != nil {
			t.Fatalf("case %d Bind(%s): %v", ci, e, err)
		}
		for trial := 0; trial < 10; trial++ {
			n := 1 + intn(rng, 60)
			cols, rows := batchColumns(rng, n)
			// Random subset selection vector (ascending), sometimes full.
			var sel []int
			for r := 0; r < n; r++ {
				if trial%3 == 0 || intn(rng, 3) > 0 {
					sel = append(sel, r)
				}
			}
			got, err := b.EvalBatch(cols, sel)
			if err != nil {
				t.Fatalf("case %d (%s): EvalBatch: %v", ci, e, err)
			}
			var want []int
			for _, r := range sel {
				ok, err := b.Eval(rows[r])
				if err != nil {
					t.Fatalf("case %d (%s): Eval row %d: %v", ci, e, r, err)
				}
				if ok {
					want = append(want, r)
				}
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("case %d (%s): batch selected %v, rows selected %v", ci, e, got, want)
			}
		}
	}
}

// TestEvalBatchScalarAgreesWithEval compares the vectorized scalar path
// (column loads and arithmetic) against row-at-a-time evaluation.
func TestEvalBatchScalarAgreesWithEval(t *testing.T) {
	rng := stats.NewRNG(778)
	schema := testRelSchema()
	cases := []Expr{
		TC("t", "a"),
		C("b"),
		IntLit(42),
		Arith{Op: Add, L: TC("t", "a"), R: TC("u", "a")},
		Arith{Op: Mul, L: C("b"), R: FloatLit(1.5)},
		Arith{Op: Sub, L: Arith{Op: Add, L: C("d"), R: IntLit(3)}, R: TC("t", "a")},
	}
	for ci, e := range cases {
		b, err := BindScalar(e, schema)
		if err != nil {
			t.Fatalf("case %d BindScalar(%s): %v", ci, e, err)
		}
		n := 40
		cols, rows := batchColumns(rng, n)
		sel := make([]int, 0, n)
		for r := 0; r < n; r += 1 + intn(rng, 2) {
			sel = append(sel, r)
		}
		out := make([]value.Value, n)
		if err := b.EvalBatch(cols, sel, out); err != nil {
			t.Fatalf("case %d (%s): EvalBatch: %v", ci, e, err)
		}
		for _, r := range sel {
			want, err := b.Eval(rows[r])
			if err != nil {
				t.Fatalf("case %d (%s): Eval row %d: %v", ci, e, r, err)
			}
			if out[r] != want {
				t.Fatalf("case %d (%s): row %d batch=%v row=%v", ci, e, r, out[r], want)
			}
		}
	}
}

// TestEvalBatchErrorParity: data-dependent errors must surface from the
// batch path exactly when the row path would hit them — a row already
// rejected by an earlier AND term (or accepted by an earlier OR term)
// must not have later terms evaluated against it.
func TestEvalBatchErrorParity(t *testing.T) {
	schema := testRelSchema()
	// a / u.a errors when u.a == 0; the guard term filters those rows out.
	guarded := Conj(
		Cmp{Op: GT, L: TC("u", "a"), R: IntLit(0)},
		Cmp{Op: GT, L: Arith{Op: Div, L: TC("t", "a"), R: TC("u", "a")}, R: IntLit(1)},
	)
	b, err := Bind(guarded, schema)
	if err != nil {
		t.Fatal(err)
	}
	rows := []value.Row{
		{value.Int(10), value.Float(0), value.Str(""), value.Date(0), value.Int(0)}, // guard filters row
		{value.Int(10), value.Float(0), value.Str(""), value.Date(0), value.Int(2)}, // 10/2 > 1
	}
	cols := make([][]value.Value, 5)
	for _, r := range rows {
		for c, v := range r {
			cols[c] = append(cols[c], v)
		}
	}
	got, err := b.EvalBatch(cols, []int{0, 1})
	if err != nil {
		t.Fatalf("guarded batch eval must not divide by zero on filtered rows: %v", err)
	}
	if fmt.Sprint(got) != "[1]" {
		t.Fatalf("got %v, want [1]", got)
	}
	// Unguarded, the division error must surface.
	unguarded := Cmp{Op: GT, L: Arith{Op: Div, L: TC("t", "a"), R: TC("u", "a")}, R: IntLit(1)}
	ub, err := Bind(unguarded, schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ub.EvalBatch(cols, []int{0, 1}); err == nil {
		t.Fatal("unguarded division by zero must error in the batch path too")
	}
}
