package expr

import (
	"math"
	"testing"

	"robustqo/internal/catalog"
)

func pushSchema() RelSchema {
	return RelSchema{Fields: []Field{
		{Table: "t", Column: "a", Type: catalog.Int},
		{Table: "t", Column: "d", Type: catalog.Date},
		{Table: "t", Column: "s", Type: catalog.String},
		{Table: "t", Column: "f", Type: catalog.Float},
	}}
}

func TestSplitPushdownIntShapes(t *testing.T) {
	rs := pushSchema()
	cases := []struct {
		e      Expr
		lo, hi int64
	}{
		{Cmp{EQ, C("a"), IntLit(7)}, 7, 7},
		{Cmp{LT, C("a"), IntLit(7)}, math.MinInt64, 6},
		{Cmp{LE, C("a"), IntLit(7)}, math.MinInt64, 7},
		{Cmp{GT, C("a"), IntLit(7)}, 8, math.MaxInt64},
		{Cmp{GE, C("a"), IntLit(7)}, 7, math.MaxInt64},
		{Cmp{GT, IntLit(7), C("a")}, math.MinInt64, 6}, // 7 > a  ⇒  a < 7
		{Between{C("d"), DateLit(100), DateLit(200)}, 100, 200},
		{Cmp{EQ, C("d"), DateLit(150)}, 150, 150},
	}
	for _, tc := range cases {
		bounds, residual := SplitPushdown(tc.e, rs)
		if len(bounds) != 1 || residual != nil {
			t.Fatalf("%s: bounds=%v residual=%v, want one bound, nil residual", tc.e, bounds, residual)
		}
		if bounds[0].IsStr || bounds[0].Lo != tc.lo || bounds[0].Hi != tc.hi {
			t.Errorf("%s: bound %+v, want [%d,%d]", tc.e, bounds[0], tc.lo, tc.hi)
		}
	}
}

func TestSplitPushdownSaturation(t *testing.T) {
	rs := pushSchema()
	for _, e := range []Expr{
		Cmp{LT, C("a"), IntLit(math.MinInt64)},
		Cmp{GT, C("a"), IntLit(math.MaxInt64)},
	} {
		bounds, residual := SplitPushdown(e, rs)
		if len(bounds) != 1 || residual != nil {
			t.Fatalf("%s: want one bound", e)
		}
		if bounds[0].Lo <= bounds[0].Hi {
			t.Errorf("%s: bound %+v should be the empty interval", e, bounds[0])
		}
	}
}

func TestSplitPushdownStringShapes(t *testing.T) {
	rs := pushSchema()
	b, res := SplitPushdown(Cmp{EQ, C("s"), StrLit("x")}, rs)
	if res != nil || len(b) != 1 || !b[0].IsStr || !b[0].HasStrLo || !b[0].HasStrHi || b[0].StrLo != "x" || b[0].StrHi != "x" {
		t.Fatalf("string EQ: bounds=%+v residual=%v", b, res)
	}
	b, res = SplitPushdown(Between{C("s"), StrLit("a"), StrLit("m")}, rs)
	if res != nil || len(b) != 1 || b[0].StrLo != "a" || b[0].StrHi != "m" {
		t.Fatalf("string BETWEEN: bounds=%+v residual=%v", b, res)
	}
	b, res = SplitPushdown(Cmp{GE, C("s"), StrLit("k")}, rs)
	if res != nil || len(b) != 1 || !b[0].HasStrLo || b[0].HasStrHi {
		t.Fatalf("string GE: bounds=%+v residual=%v", b, res)
	}
	// Strict string inequality stays residual.
	e := Expr(Cmp{LT, C("s"), StrLit("k")})
	if b, res := SplitPushdown(e, rs); b != nil || res == nil {
		t.Fatalf("string LT should not push: bounds=%+v residual=%v", b, res)
	}
}

func TestSplitPushdownRejections(t *testing.T) {
	rs := pushSchema()
	for _, e := range []Expr{
		Cmp{NE, C("a"), IntLit(3)},     // no single interval
		Cmp{EQ, C("f"), FloatLit(1.5)}, // float column
		Cmp{LT, C("a"), FloatLit(2.5)}, // float literal on int column
		Cmp{EQ, C("s"), IntLit(1)},     // kind mismatch
		Cmp{EQ, C("zz"), IntLit(1)},    // unknown column
		Or{Terms: []Expr{Cmp{EQ, C("a"), IntLit(1)}, Cmp{EQ, C("a"), IntLit(2)}}},
		Contains{E: C("s"), Substr: "x"},
		Cmp{EQ, Arith{Add, C("a"), IntLit(1)}, IntLit(5)}, // computed column
	} {
		bounds, residual := SplitPushdown(e, rs)
		if bounds != nil || residual == nil {
			t.Errorf("%s: pushed %+v, want full residual", e, bounds)
		}
	}
}

// TestSplitPushdownPrefixOnly pins the prefix rule: extraction stops at
// the first non-pushable conjunct even if later conjuncts are pushable,
// preserving the row path's left-to-right short-circuit order.
func TestSplitPushdownPrefixOnly(t *testing.T) {
	rs := pushSchema()
	p1 := Expr(Cmp{GE, C("a"), IntLit(10)})
	p2 := Expr(Contains{E: C("s"), Substr: "x"})
	p3 := Expr(Cmp{LE, C("d"), DateLit(99)})
	bounds, residual := SplitPushdown(Conj(p1, p2, p3), rs)
	if len(bounds) != 1 || bounds[0].Col != 0 {
		t.Fatalf("bounds = %+v, want just the a>=10 prefix", bounds)
	}
	res := SplitConjuncts(residual)
	if len(res) != 2 || res[0].String() != p2.String() || res[1].String() != p3.String() {
		t.Fatalf("residual = %v, want [%v %v] in order", res, p2, p3)
	}

	bounds, residual = SplitPushdown(Conj(p1, p3, p2), rs)
	if len(bounds) != 2 || residual.String() != p2.String() {
		t.Fatalf("bounds=%+v residual=%v, want two bounds and Contains residual", bounds, residual)
	}
	if bounds[1].Col != 1 || bounds[1].Hi != 99 {
		t.Errorf("second bound = %+v, want d<=99", bounds[1])
	}
}

func TestSplitPushdownNil(t *testing.T) {
	bounds, residual := SplitPushdown(nil, pushSchema())
	if bounds != nil || residual != nil {
		t.Fatalf("nil predicate: bounds=%v residual=%v", bounds, residual)
	}
}
