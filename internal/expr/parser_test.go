package expr

import (
	"strings"
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/value"
)

func TestParseComparisons(t *testing.T) {
	cases := []struct {
		in string
		op CmpOp
	}{
		{"a = 1", EQ}, {"a <> 1", NE}, {"a != 1", NE},
		{"a < 1", LT}, {"a <= 1", LE}, {"a > 1", GT}, {"a >= 1", GE},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		cmp, ok := e.(Cmp)
		if !ok || cmp.Op != c.op {
			t.Errorf("Parse(%q) = %v", c.in, e)
		}
	}
}

func TestParseLiterals(t *testing.T) {
	e := mustParse("a = 42")
	if lit := e.(Cmp).R.(Lit); lit.Val.Kind != catalog.Int || lit.Val.I != 42 {
		t.Errorf("int literal = %v", lit)
	}
	e = mustParse("a = 2.5")
	if lit := e.(Cmp).R.(Lit); lit.Val.Kind != catalog.Float || lit.Val.F != 2.5 {
		t.Errorf("float literal = %v", lit)
	}
	e = mustParse("a = 'it''s'")
	if lit := e.(Cmp).R.(Lit); lit.Val.S != "it's" {
		t.Errorf("string literal = %v", lit)
	}
	e = mustParse("a = DATE '1997-07-01'")
	want := mustDate("1997-07-01")
	if lit := e.(Cmp).R.(Lit); lit.Val.Kind != catalog.Date || lit.Val.I != want {
		t.Errorf("date literal = %v, want %d", lit, want)
	}
	e = mustParse("a = -7")
	if lit := e.(Cmp).R.(Lit); lit.Val.I != -7 {
		t.Errorf("negative literal = %v", lit)
	}
	e = mustParse("a = -2.5")
	if lit := e.(Cmp).R.(Lit); lit.Val.F != -2.5 {
		t.Errorf("negative float literal = %v", lit)
	}
}

func TestParseBetween(t *testing.T) {
	e := mustParse("d BETWEEN DATE '1997-07-01' AND DATE '1997-09-30'")
	b, ok := e.(Between)
	if !ok {
		t.Fatalf("not Between: %v", e)
	}
	if b.Lo.(Lit).Val.I >= b.Hi.(Lit).Val.I {
		t.Error("bounds out of order")
	}
}

func TestParseBooleanPrecedence(t *testing.T) {
	// AND binds tighter than OR.
	e := mustParse("a = 1 OR b = 2 AND c = 3")
	or, ok := e.(Or)
	if !ok || len(or.Terms) != 2 {
		t.Fatalf("top = %v", e)
	}
	if _, ok := or.Terms[1].(And); !ok {
		t.Errorf("right term = %v", or.Terms[1])
	}
	// NOT binds tighter than AND.
	e = mustParse("NOT a = 1 AND b = 2")
	and, ok := e.(And)
	if !ok {
		t.Fatalf("top = %v", e)
	}
	if _, ok := and.Terms[0].(Not); !ok {
		t.Errorf("left term = %v", and.Terms[0])
	}
}

func TestParseParenthesesOverride(t *testing.T) {
	e := mustParse("(a = 1 OR b = 2) AND c = 3")
	and, ok := e.(And)
	if !ok {
		t.Fatalf("top = %v", e)
	}
	if _, ok := and.Terms[0].(Or); !ok {
		t.Errorf("left = %v", and.Terms[0])
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	e := mustParse("a + 2 * 3 = 7")
	add, ok := e.(Cmp).L.(Arith)
	if !ok || add.Op != Add {
		t.Fatalf("L = %v", e.(Cmp).L)
	}
	mul, ok := add.R.(Arith)
	if !ok || mul.Op != Mul {
		t.Errorf("R = %v", add.R)
	}
	// Parenthesized arithmetic inside a comparison.
	e = mustParse("(a + 2) * 3 >= 10")
	outer := e.(Cmp).L.(Arith)
	if outer.Op != Mul {
		t.Errorf("outer op = %v", outer.Op)
	}
	if inner := outer.L.(Arith); inner.Op != Add {
		t.Errorf("inner op = %v", inner.Op)
	}
}

func TestParseQualifiedColumns(t *testing.T) {
	e := mustParse("lineitem.l_shipdate < orders.o_orderdate")
	c := e.(Cmp)
	l := c.L.(Col)
	if l.Ref.Table != "lineitem" || l.Ref.Column != "l_shipdate" {
		t.Errorf("left ref = %v", l.Ref)
	}
	r := c.R.(Col)
	if r.Ref.Table != "orders" || r.Ref.Column != "o_orderdate" {
		t.Errorf("right ref = %v", r.Ref)
	}
}

func TestParseContainsAndLike(t *testing.T) {
	e := mustParse("comment CONTAINS 'promo'")
	if got := e.(Contains); got.Substr != "promo" {
		t.Errorf("Contains = %v", got)
	}
	e = mustParse("comment LIKE '%promo%'")
	if got := e.(Contains); got.Substr != "promo" {
		t.Errorf("LIKE = %v", got)
	}
	if _, err := Parse("comment LIKE 'a%b'"); err == nil {
		t.Error("interior wildcard accepted")
	}
	if _, err := Parse("comment LIKE x"); err == nil {
		t.Error("non-string LIKE pattern accepted")
	}
}

func TestParseKeywordCaseInsensitive(t *testing.T) {
	e, err := Parse("a between 1 and 2 or not b = 3")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(Or); !ok {
		t.Errorf("parsed = %v", e)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"a =",
		"a = 'unterminated",
		"a = 1 extra",
		"a BETWEEN 1",
		"a BETWEEN 1 OR 2",
		"(a = 1",
		"a = 1)",
		"a ! b",
		"a = 1..2",
		"DATE 42 = a",
		"DATE 'nope' = a",
		"a = @",
		"AND a = 1",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

// mustParse and mustDate are test-local conveniences for
// compile-time-constant inputs; the library itself only returns errors.
func mustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

func mustDate(s string) int64 {
	d, err := value.ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}

func TestParseUnbalancedParens(t *testing.T) {
	if _, err := Parse("(("); err == nil {
		t.Error("Parse(\"((\") succeeded")
	}
}

func TestParseUnaryMinusExpression(t *testing.T) {
	// Unary minus over a column becomes 0 - col.
	e := mustParse("-a < 0")
	sub, ok := e.(Cmp).L.(Arith)
	if !ok || sub.Op != Sub {
		t.Fatalf("L = %v", e.(Cmp).L)
	}
	if lit, ok := sub.L.(Lit); !ok || lit.Val.I != 0 {
		t.Errorf("base = %v", sub.L)
	}
}

func TestParseEndToEndEval(t *testing.T) {
	schema := RelSchema{Fields: []Field{
		{Table: "l", Column: "ship", Type: catalog.Date},
		{Table: "l", Column: "receipt", Type: catalog.Date},
		{Table: "l", Column: "qty", Type: catalog.Float},
	}}
	e := mustParse("ship BETWEEN DATE '1997-07-01' AND DATE '1997-09-30' AND receipt >= ship + 2 AND qty * 2 > 5")
	b, err := Bind(e, schema)
	if err != nil {
		t.Fatal(err)
	}
	ship := mustDate("1997-08-15")
	row := value.Row{value.Date(ship), value.Date(ship + 3), value.Float(3)}
	ok, err := b.Eval(row)
	if err != nil || !ok {
		t.Errorf("eval = %v, %v", ok, err)
	}
	row[1] = value.Date(ship + 1) // violates receipt >= ship + 2
	ok, err = b.Eval(row)
	if err != nil || ok {
		t.Errorf("eval2 = %v, %v", ok, err)
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	// The String rendering of a parsed expression must re-parse to an
	// equivalent tree (checked structurally via another String pass).
	inputs := []string{
		"a = 1 AND b < 2.5 OR NOT c >= 3",
		"d BETWEEN 1 AND 10 AND s CONTAINS 'x'",
		"(a + 2) * 3 - 1 >= b / 4",
	}
	for _, in := range inputs {
		e1 := mustParse(in)
		s1 := e1.String()
		e2, err := Parse(strings.ReplaceAll(s1, "\"", "'"))
		if err != nil {
			t.Fatalf("re-parse %q: %v", s1, err)
		}
		if s2 := e2.String(); s1 != s2 {
			t.Errorf("round trip: %q -> %q", s1, s2)
		}
	}
}

func TestParseIn(t *testing.T) {
	e := mustParse("a IN (1, 2, 3)")
	in, ok := e.(In)
	if !ok || len(in.Vals) != 3 || in.Vals[1].I != 2 {
		t.Fatalf("parsed = %v", e)
	}
	// Mixed literal kinds and dates.
	e = mustParse("d IN (DATE '1997-07-01', DATE '1997-07-02')")
	in = e.(In)
	if len(in.Vals) != 2 || in.Vals[1].I-in.Vals[0].I != 1 {
		t.Fatalf("date list = %v", in)
	}
	// Negative numbers via unary folding.
	e = mustParse("a IN (-1, -2.5)")
	in = e.(In)
	if in.Vals[0].I != -1 || in.Vals[1].F != -2.5 {
		t.Fatalf("negative list = %v", in)
	}
	// NOT IN via NOT precedence.
	e = mustParse("NOT a IN (1)")
	if _, ok := e.(Not); !ok {
		t.Fatalf("NOT IN = %v", e)
	}
	// String rendering re-parses.
	if !strings.Contains(mustParse("a IN (1, 2)").String(), "IN (1, 2)") {
		t.Error("String rendering")
	}
	for _, bad := range []string{
		"a IN",
		"a IN 1",
		"a IN ()",
		"a IN (1, )",
		"a IN (1; 2)",
		"a IN (b)",
		"a IN (1, 2",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}
