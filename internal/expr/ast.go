// Package expr provides typed predicate and scalar expression trees, name
// binding against relation schemas, evaluation over rows, and a small
// SQL-like predicate parser.
//
// Expressions are deliberately general — comparisons, BETWEEN, boolean
// connectives, arithmetic, and substring matching — because one of the
// paper's selling points for sampling-based estimation is that it "works
// for almost any type of query predicate", unlike histograms which only
// handle equality and range predicates (Section 3.2, point 3).
package expr

import (
	"fmt"
	"strings"

	"robustqo/internal/value"
)

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// ArithOp enumerates arithmetic operators.
type ArithOp int

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	default:
		return fmt.Sprintf("ArithOp(%d)", int(op))
	}
}

// ColumnRef names a column, optionally qualified by table.
type ColumnRef struct {
	Table  string // "" if unqualified
	Column string
}

func (c ColumnRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// Expr is a node of an expression tree. Implementations are Col, Lit,
// Cmp, Between, And, Or, Not, Arith, and Contains.
type Expr interface {
	fmt.Stringer
	// appendColumns accumulates every column referenced in the subtree.
	appendColumns(dst []ColumnRef) []ColumnRef
}

// Columns returns every column reference in the expression, in syntactic
// order, with duplicates preserved.
func Columns(e Expr) []ColumnRef {
	if e == nil {
		return nil
	}
	return e.appendColumns(nil)
}

// Col is a column reference.
type Col struct{ Ref ColumnRef }

// C is shorthand for an unqualified column reference.
func C(name string) Col { return Col{Ref: ColumnRef{Column: name}} }

// TC is shorthand for a table-qualified column reference.
func TC(table, name string) Col { return Col{Ref: ColumnRef{Table: table, Column: name}} }

func (c Col) String() string                            { return c.Ref.String() }
func (c Col) appendColumns(dst []ColumnRef) []ColumnRef { return append(dst, c.Ref) }

// Lit is a literal value.
type Lit struct{ Val value.Value }

// IntLit returns an integer literal.
func IntLit(v int64) Lit { return Lit{Val: value.Int(v)} }

// FloatLit returns a float literal.
func FloatLit(v float64) Lit { return Lit{Val: value.Float(v)} }

// StrLit returns a string literal.
func StrLit(v string) Lit { return Lit{Val: value.Str(v)} }

// DateLit returns a date literal from days since the epoch.
func DateLit(days int64) Lit { return Lit{Val: value.Date(days)} }

func (l Lit) String() string                            { return l.Val.String() }
func (l Lit) appendColumns(dst []ColumnRef) []ColumnRef { return dst }

// Cmp is a binary comparison L op R.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

func (c Cmp) String() string { return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R) }
func (c Cmp) appendColumns(dst []ColumnRef) []ColumnRef {
	return c.R.appendColumns(c.L.appendColumns(dst))
}

// Between is the ternary predicate Lo <= E <= Hi.
type Between struct {
	E, Lo, Hi Expr
}

func (b Between) String() string {
	return fmt.Sprintf("(%s BETWEEN %s AND %s)", b.E, b.Lo, b.Hi)
}
func (b Between) appendColumns(dst []ColumnRef) []ColumnRef {
	return b.Hi.appendColumns(b.Lo.appendColumns(b.E.appendColumns(dst)))
}

// And is a conjunction of predicates.
type And struct{ Terms []Expr }

// Conj builds an n-ary conjunction, flattening nested Ands. A single term
// is returned unwrapped; zero terms yield nil (the always-true predicate).
func Conj(terms ...Expr) Expr {
	var flat []Expr
	for _, t := range terms {
		if t == nil {
			continue
		}
		if a, ok := t.(And); ok {
			flat = append(flat, a.Terms...)
			continue
		}
		flat = append(flat, t)
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	}
	return And{Terms: flat}
}

func (a And) String() string { return joinTerms(a.Terms, " AND ") }
func (a And) appendColumns(dst []ColumnRef) []ColumnRef {
	for _, t := range a.Terms {
		dst = t.appendColumns(dst)
	}
	return dst
}

// Or is a disjunction of predicates.
type Or struct{ Terms []Expr }

func (o Or) String() string { return joinTerms(o.Terms, " OR ") }
func (o Or) appendColumns(dst []ColumnRef) []ColumnRef {
	for _, t := range o.Terms {
		dst = t.appendColumns(dst)
	}
	return dst
}

func joinTerms(terms []Expr, sep string) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// Not negates a predicate.
type Not struct{ E Expr }

func (n Not) String() string                            { return "(NOT " + n.E.String() + ")" }
func (n Not) appendColumns(dst []ColumnRef) []ColumnRef { return n.E.appendColumns(dst) }

// Arith is a binary arithmetic expression over numeric operands.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

func (a Arith) String() string { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }
func (a Arith) appendColumns(dst []ColumnRef) []ColumnRef {
	return a.R.appendColumns(a.L.appendColumns(dst))
}

// Contains is the substring predicate E LIKE '%Substr%'.
type Contains struct {
	E      Expr
	Substr string
}

func (c Contains) String() string {
	return fmt.Sprintf("(%s CONTAINS %q)", c.E, c.Substr)
}
func (c Contains) appendColumns(dst []ColumnRef) []ColumnRef { return c.E.appendColumns(dst) }

// SplitConjuncts decomposes a predicate into its top-level AND terms.
// A nil predicate yields nil.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(And); ok {
		return a.Terms
	}
	return []Expr{e}
}

// In is the list-membership predicate E IN (Vals...). Values are literal;
// list membership over expressions can be written as an OR of equalities.
type In struct {
	E    Expr
	Vals []value.Value
}

func (n In) String() string {
	parts := make([]string, len(n.Vals))
	for i, v := range n.Vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("(%s IN (%s))", n.E, strings.Join(parts, ", "))
}
func (n In) appendColumns(dst []ColumnRef) []ColumnRef { return n.E.appendColumns(dst) }
