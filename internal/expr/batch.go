package expr

import (
	"fmt"
	"strings"

	"robustqo/internal/catalog"
	"robustqo/internal/value"
)

// This file is the vectorized twin of bind.go: every expression compiles
// to a second evaluator that runs over column vectors and selection
// vectors instead of one row at a time. Selection vectors are strictly
// increasing row indices into the columns; predicate evaluators return the
// matching subset as a NEW slice (never aliasing their input), which is
// what lets Or track matched/remaining sets without corruption. Boolean
// connectives preserve row-at-a-time short-circuit semantics exactly: a
// row filtered out by an earlier term is never evaluated by later terms,
// so data-dependent errors (division by zero, type mismatches) surface for
// precisely the same rows as Bound.Eval.

// batchPredFn evaluates a predicate over the rows in sel, returning the
// indices that pass in ascending order.
type batchPredFn func(cols [][]value.Value, sel []int) ([]int, error)

// batchScalarFn evaluates a scalar for the rows in sel, writing each
// result at out[row] (out is indexed by row id, not by sel position).
type batchScalarFn func(cols [][]value.Value, sel []int, out []value.Value) error

// growVec returns a scratch vector with length n, reusing buf's storage
// when possible.
func growVec(buf []value.Value, n int) []value.Value {
	if cap(buf) < n {
		return make([]value.Value, n)
	}
	return buf[:n]
}

// scratchLen returns the row-id space a scratch vector must cover for the
// given columns and selection.
func scratchLen(cols [][]value.Value, sel []int) int {
	n := 0
	if len(cols) > 0 {
		n = len(cols[0])
	}
	if len(sel) > 0 && sel[len(sel)-1]+1 > n {
		n = sel[len(sel)-1] + 1
	}
	return n
}

// mergeSorted returns the ascending union of two sorted, disjoint
// selection vectors as a fresh slice.
func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// diffSorted returns the elements of a not present in b (both sorted
// ascending) as a fresh slice.
func diffSorted(a, b []int) []int {
	out := make([]int, 0, len(a))
	j := 0
	for _, r := range a {
		for j < len(b) && b[j] < r {
			j++
		}
		if j < len(b) && b[j] == r {
			continue
		}
		out = append(out, r)
	}
	return out
}

func bindPredBatch(e Expr, schema RelSchema) (batchPredFn, error) {
	switch n := e.(type) {
	case Cmp:
		l, err := bindScalarBatch(n.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := bindScalarBatch(n.R, schema)
		if err != nil {
			return nil, err
		}
		op := n.Op
		var lbuf, rbuf []value.Value
		return func(cols [][]value.Value, sel []int) ([]int, error) {
			m := scratchLen(cols, sel)
			lbuf, rbuf = growVec(lbuf, m), growVec(rbuf, m)
			if err := l(cols, sel, lbuf); err != nil {
				return nil, err
			}
			if err := r(cols, sel, rbuf); err != nil {
				return nil, err
			}
			out := make([]int, 0, len(sel))
			for _, row := range sel {
				c, err := value.Compare(lbuf[row], rbuf[row])
				if err != nil {
					return nil, err
				}
				keep := false
				switch op {
				case EQ:
					keep = c == 0
				case NE:
					keep = c != 0
				case LT:
					keep = c < 0
				case LE:
					keep = c <= 0
				case GT:
					keep = c > 0
				default:
					keep = c >= 0
				}
				if keep {
					out = append(out, row)
				}
			}
			return out, nil
		}, nil
	case Between:
		v, err := bindScalarBatch(n.E, schema)
		if err != nil {
			return nil, err
		}
		lo, err := bindScalarBatch(n.Lo, schema)
		if err != nil {
			return nil, err
		}
		hi, err := bindScalarBatch(n.Hi, schema)
		if err != nil {
			return nil, err
		}
		var vbuf, lobuf, hibuf []value.Value
		return func(cols [][]value.Value, sel []int) ([]int, error) {
			m := scratchLen(cols, sel)
			vbuf, lobuf = growVec(vbuf, m), growVec(lobuf, m)
			if err := v(cols, sel, vbuf); err != nil {
				return nil, err
			}
			if err := lo(cols, sel, lobuf); err != nil {
				return nil, err
			}
			// The hi bound is only evaluated for rows that clear the lo
			// bound, mirroring the row path's short circuit.
			pass := make([]int, 0, len(sel))
			for _, row := range sel {
				cLo, err := value.Compare(vbuf[row], lobuf[row])
				if err != nil {
					return nil, err
				}
				if cLo >= 0 {
					pass = append(pass, row)
				}
			}
			if len(pass) == 0 {
				return pass, nil
			}
			hibuf = growVec(hibuf, m)
			if err := hi(cols, pass, hibuf); err != nil {
				return nil, err
			}
			out := pass[:0]
			for _, row := range pass {
				cHi, err := value.Compare(vbuf[row], hibuf[row])
				if err != nil {
					return nil, err
				}
				if cHi <= 0 {
					out = append(out, row)
				}
			}
			return out, nil
		}, nil
	case And:
		terms, err := bindPredBatchList(n.Terms, schema)
		if err != nil {
			return nil, err
		}
		return func(cols [][]value.Value, sel []int) ([]int, error) {
			cur := sel
			for _, t := range terms {
				var err error
				cur, err = t(cols, cur)
				if err != nil {
					return nil, err
				}
				if len(cur) == 0 {
					break
				}
			}
			return cur, nil
		}, nil
	case Or:
		terms, err := bindPredBatchList(n.Terms, schema)
		if err != nil {
			return nil, err
		}
		return func(cols [][]value.Value, sel []int) ([]int, error) {
			var matched []int
			remaining := sel
			for _, t := range terms {
				res, err := t(cols, remaining)
				if err != nil {
					return nil, err
				}
				matched = mergeSorted(matched, res)
				remaining = diffSorted(remaining, res)
				if len(remaining) == 0 {
					break
				}
			}
			return matched, nil
		}, nil
	case Not:
		inner, err := bindPredBatch(n.E, schema)
		if err != nil {
			return nil, err
		}
		return func(cols [][]value.Value, sel []int) ([]int, error) {
			res, err := inner(cols, sel)
			if err != nil {
				return nil, err
			}
			return diffSorted(sel, res), nil
		}, nil
	case Contains:
		v, err := bindScalarBatch(n.E, schema)
		if err != nil {
			return nil, err
		}
		sub := n.Substr
		var vbuf []value.Value
		return func(cols [][]value.Value, sel []int) ([]int, error) {
			vbuf = growVec(vbuf, scratchLen(cols, sel))
			if err := v(cols, sel, vbuf); err != nil {
				return nil, err
			}
			out := make([]int, 0, len(sel))
			for _, row := range sel {
				if vbuf[row].Kind != catalog.String {
					return nil, fmt.Errorf("expr: CONTAINS over non-string value %s", vbuf[row])
				}
				if strings.Contains(vbuf[row].S, sub) {
					out = append(out, row)
				}
			}
			return out, nil
		}, nil
	case In:
		if len(n.Vals) == 0 {
			return nil, fmt.Errorf("expr: IN with an empty value list")
		}
		v, err := bindScalarBatch(n.E, schema)
		if err != nil {
			return nil, err
		}
		vals := n.Vals
		var vbuf []value.Value
		return func(cols [][]value.Value, sel []int) ([]int, error) {
			vbuf = growVec(vbuf, scratchLen(cols, sel))
			if err := v(cols, sel, vbuf); err != nil {
				return nil, err
			}
			out := make([]int, 0, len(sel))
			for _, row := range sel {
				for _, candidate := range vals {
					c, err := value.Compare(vbuf[row], candidate)
					if err != nil {
						return nil, err
					}
					if c == 0 {
						out = append(out, row)
						break
					}
				}
			}
			return out, nil
		}, nil
	case Col, Lit, Arith:
		return nil, fmt.Errorf("expr: %s is not a predicate", e)
	default:
		return nil, fmt.Errorf("expr: unsupported predicate node %T", e)
	}
}

func bindPredBatchList(terms []Expr, schema RelSchema) ([]batchPredFn, error) {
	if len(terms) == 0 {
		return nil, fmt.Errorf("expr: empty boolean connective")
	}
	out := make([]batchPredFn, len(terms))
	for i, t := range terms {
		f, err := bindPredBatch(t, schema)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

func bindScalarBatch(e Expr, schema RelSchema) (batchScalarFn, error) {
	switch n := e.(type) {
	case Col:
		idx, err := schema.Resolve(n.Ref)
		if err != nil {
			return nil, err
		}
		return func(cols [][]value.Value, sel []int, out []value.Value) error {
			if idx >= len(cols) {
				return fmt.Errorf("expr: batch too narrow for column ordinal %d", idx)
			}
			col := cols[idx]
			for _, row := range sel {
				if row >= len(col) {
					return fmt.Errorf("expr: batch too short for row %d", row)
				}
				out[row] = col[row]
			}
			return nil
		}, nil
	case Lit:
		v := n.Val
		return func(cols [][]value.Value, sel []int, out []value.Value) error {
			for _, row := range sel {
				out[row] = v
			}
			return nil
		}, nil
	case Arith:
		l, err := bindScalarBatch(n.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := bindScalarBatch(n.R, schema)
		if err != nil {
			return nil, err
		}
		op := n.Op
		var lbuf, rbuf []value.Value
		return func(cols [][]value.Value, sel []int, out []value.Value) error {
			m := scratchLen(cols, sel)
			lbuf, rbuf = growVec(lbuf, m), growVec(rbuf, m)
			if err := l(cols, sel, lbuf); err != nil {
				return err
			}
			if err := r(cols, sel, rbuf); err != nil {
				return err
			}
			for _, row := range sel {
				v, err := applyArith(op, lbuf[row], rbuf[row])
				if err != nil {
					return err
				}
				out[row] = v
			}
			return nil
		}, nil
	case Cmp, Between, And, Or, Not, Contains, In:
		return nil, fmt.Errorf("expr: predicate %s used as scalar", e)
	default:
		return nil, fmt.Errorf("expr: unsupported scalar node %T", e)
	}
}
