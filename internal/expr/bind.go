package expr

import (
	"fmt"
	"strings"

	"robustqo/internal/catalog"
	"robustqo/internal/value"
)

// Field is one column of a relation schema as seen by the binder:
// the (possibly empty) table qualifier, the column name, and the type.
type Field struct {
	Table  string
	Column string
	Type   catalog.Type
}

// RelSchema describes the tuple layout an expression is evaluated against.
// Base-table scans use a schema with one field per table column; join
// results and join synopses use concatenated, table-qualified schemas.
type RelSchema struct {
	Fields []Field
}

// SchemaForTable builds the RelSchema of a base table, qualifying each
// field with the table name.
func SchemaForTable(s *catalog.TableSchema) RelSchema {
	fields := make([]Field, len(s.Columns))
	for i, c := range s.Columns {
		fields[i] = Field{Table: s.Name, Column: c.Name, Type: c.Type}
	}
	return RelSchema{Fields: fields}
}

// Concat returns the schema of this schema's fields followed by other's.
func (rs RelSchema) Concat(other RelSchema) RelSchema {
	fields := make([]Field, 0, len(rs.Fields)+len(other.Fields))
	fields = append(fields, rs.Fields...)
	fields = append(fields, other.Fields...)
	return RelSchema{Fields: fields}
}

// Resolve finds the ordinal of a column reference. Qualified references
// must match both table and column; unqualified references must match a
// unique column name across the schema.
func (rs RelSchema) Resolve(ref ColumnRef) (int, error) {
	found := -1
	for i, f := range rs.Fields {
		if f.Column != ref.Column {
			continue
		}
		if ref.Table != "" && f.Table != ref.Table {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("expr: ambiguous column reference %s", ref)
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("expr: unknown column %s in schema %s", ref, rs)
	}
	return found, nil
}

// String renders the schema for error messages.
func (rs RelSchema) String() string {
	parts := make([]string, len(rs.Fields))
	for i, f := range rs.Fields {
		name := f.Column
		if f.Table != "" {
			name = f.Table + "." + f.Column
		}
		parts[i] = name
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Bound is a predicate compiled against a specific schema, ready for
// repeated evaluation over rows — or column-vector batches — of that
// schema.
type Bound struct {
	eval      func(row value.Row) (bool, error)
	evalBatch batchPredFn
	src       Expr
}

// Expr returns the source expression the predicate was bound from.
func (b *Bound) Expr() Expr { return b.src }

// Eval evaluates the predicate over a row.
func (b *Bound) Eval(row value.Row) (bool, error) { return b.eval(row) }

// EvalBatch evaluates the predicate over the rows of the column vectors
// named by the selection vector sel (strictly increasing row indices),
// returning the passing subset in ascending order. The result is a fresh
// slice; sel is never mutated or aliased.
//
//qo:hotpath
func (b *Bound) EvalBatch(cols [][]value.Value, sel []int) ([]int, error) {
	return b.evalBatch(cols, sel)
}

// Bind compiles a predicate expression against a schema. A nil expression
// binds to the always-true predicate.
func Bind(e Expr, schema RelSchema) (*Bound, error) {
	if e == nil {
		return &Bound{
			eval: func(value.Row) (bool, error) { return true, nil },
			evalBatch: func(cols [][]value.Value, sel []int) ([]int, error) {
				return append([]int(nil), sel...), nil
			},
		}, nil
	}
	f, err := bindPred(e, schema)
	if err != nil {
		return nil, err
	}
	bf, err := bindPredBatch(e, schema)
	if err != nil {
		return nil, err
	}
	return &Bound{eval: f, evalBatch: bf, src: e}, nil
}

// BoundScalar is a scalar expression compiled against a schema.
type BoundScalar struct {
	eval      func(row value.Row) (value.Value, error)
	evalBatch batchScalarFn
}

// Eval evaluates the scalar over a row.
func (b *BoundScalar) Eval(row value.Row) (value.Value, error) { return b.eval(row) }

// EvalBatch evaluates the scalar for the rows in sel, writing each result
// at out[row]. out must cover every row id in sel.
//
//qo:hotpath
func (b *BoundScalar) EvalBatch(cols [][]value.Value, sel []int, out []value.Value) error {
	return b.evalBatch(cols, sel, out)
}

// BindScalar compiles a scalar expression against a schema.
func BindScalar(e Expr, schema RelSchema) (*BoundScalar, error) {
	f, err := bindScalar(e, schema)
	if err != nil {
		return nil, err
	}
	bf, err := bindScalarBatch(e, schema)
	if err != nil {
		return nil, err
	}
	return &BoundScalar{eval: f, evalBatch: bf}, nil
}

type predFn func(value.Row) (bool, error)

type scalarFn func(value.Row) (value.Value, error)

func bindPred(e Expr, schema RelSchema) (predFn, error) {
	switch n := e.(type) {
	case Cmp:
		l, err := bindScalar(n.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := bindScalar(n.R, schema)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(row value.Row) (bool, error) {
			lv, err := l(row)
			if err != nil {
				return false, err
			}
			rv, err := r(row)
			if err != nil {
				return false, err
			}
			c, err := value.Compare(lv, rv)
			if err != nil {
				return false, err
			}
			switch op {
			case EQ:
				return c == 0, nil
			case NE:
				return c != 0, nil
			case LT:
				return c < 0, nil
			case LE:
				return c <= 0, nil
			case GT:
				return c > 0, nil
			default:
				return c >= 0, nil
			}
		}, nil
	case Between:
		v, err := bindScalar(n.E, schema)
		if err != nil {
			return nil, err
		}
		lo, err := bindScalar(n.Lo, schema)
		if err != nil {
			return nil, err
		}
		hi, err := bindScalar(n.Hi, schema)
		if err != nil {
			return nil, err
		}
		return func(row value.Row) (bool, error) {
			vv, err := v(row)
			if err != nil {
				return false, err
			}
			lov, err := lo(row)
			if err != nil {
				return false, err
			}
			cLo, err := value.Compare(vv, lov)
			if err != nil {
				return false, err
			}
			if cLo < 0 {
				return false, nil
			}
			hiv, err := hi(row)
			if err != nil {
				return false, err
			}
			cHi, err := value.Compare(vv, hiv)
			if err != nil {
				return false, err
			}
			return cHi <= 0, nil
		}, nil
	case And:
		terms, err := bindPredList(n.Terms, schema)
		if err != nil {
			return nil, err
		}
		return func(row value.Row) (bool, error) {
			for _, t := range terms {
				ok, err := t(row)
				if err != nil || !ok {
					return false, err
				}
			}
			return true, nil
		}, nil
	case Or:
		terms, err := bindPredList(n.Terms, schema)
		if err != nil {
			return nil, err
		}
		return func(row value.Row) (bool, error) {
			for _, t := range terms {
				ok, err := t(row)
				if err != nil {
					return false, err
				}
				if ok {
					return true, nil
				}
			}
			return false, nil
		}, nil
	case Not:
		inner, err := bindPred(n.E, schema)
		if err != nil {
			return nil, err
		}
		return func(row value.Row) (bool, error) {
			ok, err := inner(row)
			return !ok, err
		}, nil
	case Contains:
		v, err := bindScalar(n.E, schema)
		if err != nil {
			return nil, err
		}
		sub := n.Substr
		return func(row value.Row) (bool, error) {
			vv, err := v(row)
			if err != nil {
				return false, err
			}
			if vv.Kind != catalog.String {
				return false, fmt.Errorf("expr: CONTAINS over non-string value %s", vv)
			}
			return strings.Contains(vv.S, sub), nil
		}, nil
	case In:
		if len(n.Vals) == 0 {
			return nil, fmt.Errorf("expr: IN with an empty value list")
		}
		v, err := bindScalar(n.E, schema)
		if err != nil {
			return nil, err
		}
		vals := n.Vals
		return func(row value.Row) (bool, error) {
			vv, err := v(row)
			if err != nil {
				return false, err
			}
			for _, candidate := range vals {
				c, err := value.Compare(vv, candidate)
				if err != nil {
					return false, err
				}
				if c == 0 {
					return true, nil
				}
			}
			return false, nil
		}, nil
	case Col, Lit, Arith:
		return nil, fmt.Errorf("expr: %s is not a predicate", e)
	default:
		return nil, fmt.Errorf("expr: unsupported predicate node %T", e)
	}
}

func bindPredList(terms []Expr, schema RelSchema) ([]predFn, error) {
	if len(terms) == 0 {
		return nil, fmt.Errorf("expr: empty boolean connective")
	}
	out := make([]predFn, len(terms))
	for i, t := range terms {
		f, err := bindPred(t, schema)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

func bindScalar(e Expr, schema RelSchema) (scalarFn, error) {
	switch n := e.(type) {
	case Col:
		idx, err := schema.Resolve(n.Ref)
		if err != nil {
			return nil, err
		}
		return func(row value.Row) (value.Value, error) {
			if idx >= len(row) {
				return value.Value{}, fmt.Errorf("expr: row too short for column ordinal %d", idx)
			}
			return row[idx], nil
		}, nil
	case Lit:
		v := n.Val
		return func(value.Row) (value.Value, error) { return v, nil }, nil
	case Arith:
		l, err := bindScalar(n.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := bindScalar(n.R, schema)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(row value.Row) (value.Value, error) {
			lv, err := l(row)
			if err != nil {
				return value.Value{}, err
			}
			rv, err := r(row)
			if err != nil {
				return value.Value{}, err
			}
			return applyArith(op, lv, rv)
		}, nil
	case Cmp, Between, And, Or, Not, Contains, In:
		return nil, fmt.Errorf("expr: predicate %s used as scalar", e)
	default:
		return nil, fmt.Errorf("expr: unsupported scalar node %T", e)
	}
}

func applyArith(op ArithOp, l, r value.Value) (value.Value, error) {
	if !l.Numeric() || !r.Numeric() {
		return value.Value{}, fmt.Errorf("expr: arithmetic over non-numeric values %s %s %s", l, op, r)
	}
	// Integer arithmetic when both operands are integral; this keeps date
	// shifting (date + days) exact, which Experiment 1's template relies on.
	if l.Kind != catalog.Float && r.Kind != catalog.Float {
		kind := l.Kind
		if r.Kind == catalog.Date {
			kind = catalog.Date
		}
		var out int64
		switch op {
		case Add:
			out = l.I + r.I
		case Sub:
			out = l.I - r.I
		case Mul:
			out = l.I * r.I
		case Div:
			if r.I == 0 {
				return value.Value{}, fmt.Errorf("expr: integer division by zero")
			}
			out = l.I / r.I
		}
		return value.Value{Kind: kind, I: out}, nil
	}
	lf, rf := l.AsFloat(), r.AsFloat()
	var out float64
	switch op {
	case Add:
		out = lf + rf
	case Sub:
		out = lf - rf
	case Mul:
		out = lf * rf
	case Div:
		if rf == 0 {
			return value.Value{}, fmt.Errorf("expr: division by zero")
		}
		out = lf / rf
	}
	return value.Float(out), nil
}
