// Command benchjoin measures what the parallel partitioned hash join
// buys and proves what it must not change. It drains a whole
// scan→hashjoin pipeline under one Exchange — the shape the optimizer's
// parallelize post-pass emits — at DOP 1, 2, and 4, checks rows and
// cost counters are identical to the serial plan at every DOP (always
// enforced), and times the serial-vs-DOP=4 speedup (enforced only on
// machines with at least 4 CPUs, waived with an explanation otherwise).
// It also pins the posterior pre-sizing contract through the
// robustqo_hashjoin_* metrics: a build estimate within 2x of the actual
// cardinality must record zero modeled rehashes and a pre-size hit,
// while a wild underestimate must record growth. The report lands in
// BENCH_join.json in CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"testing"

	"robustqo/internal/cost"
	"robustqo/internal/engine"
	"robustqo/internal/expr"
	"robustqo/internal/obs"
	"robustqo/internal/tpch"
)

type report struct {
	CPUs              int      `json:"cpus"`
	NumCPU            int      `json:"num_cpu"`
	Lines             int      `json:"lines"`
	BuildRows         int      `json:"build_rows"`
	Reps              int      `json:"reps"`
	SerialNsPerOp     float64  `json:"serial_ns_per_op"`
	DOP2NsPerOp       float64  `json:"dop2_ns_per_op"`
	DOP4NsPerOp       float64  `json:"dop4_ns_per_op"`
	SpeedupDOP2       float64  `json:"speedup_dop2"`
	SpeedupDOP4       float64  `json:"speedup_dop4"`
	Rows              int      `json:"rows"`
	IdenticalRows     bool     `json:"identical_rows"`
	IdenticalCounters bool     `json:"identical_counters"`
	MinSpeedup        float64  `json:"min_speedup"`
	SpeedupEnforced   bool     `json:"speedup_enforced"`
	SpeedupWaiver     string   `json:"speedup_waiver,omitempty"`
	WaivedGates       []string `json:"waived_gates"`
	// Pre-sizing gate: the estimated run carries BuildRowsEst within 2x
	// of the actual build cardinality and must not grow; the unsized run
	// models a hand-built plan and must.
	PresizeHits           int64 `json:"presize_hits"`
	PresizeRehashes       int64 `json:"presize_rehashes"`
	ParallelBuilds        int64 `json:"parallel_builds"`
	UnderestimateRehashes int64 `json:"underestimate_rehashes"`
}

func main() {
	out := flag.String("out", "BENCH_join.json", "report file path")
	lines := flag.Int("lines", 60000, "lineitem rows to generate")
	reps := flag.Int("reps", 3, "benchmark repetitions (best-of)")
	minSpeedup := flag.Float64("min-speedup", 1.5, "fail when the DOP=4 join speedup is below this (needs >=4 CPUs)")
	flag.Parse()
	if err := run(*out, *lines, *reps, *minSpeedup); err != nil {
		fmt.Fprintln(os.Stderr, "benchjoin:", err)
		os.Exit(1)
	}
}

func run(out string, lines, reps int, minSpeedup float64) error {
	db, err := tpch.Generate(tpch.Config{Lines: lines, Seed: 2005})
	if err != nil {
		return err
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		return err
	}
	orders, ok := db.Table("orders")
	if !ok {
		return fmt.Errorf("generated database has no orders table")
	}
	buildRows := orders.NumRows()

	// The probe side carries a selective filter, so the parallel work is
	// the full lineitem scan, filter, and probe — split across workers —
	// while the serial merge only carries the survivors. The build side
	// (all of orders) is big enough to cross the partitioned-build
	// threshold, so DOP>1 also exercises the two-phase parallel build.
	pred, err := expr.Parse("l_quantity >= 45 AND l_extendedprice BETWEEN 100 AND 20000")
	if err != nil {
		return err
	}
	plan := func(dop int, est float64) engine.Node {
		var n engine.Node = &engine.HashJoin{
			Build:        &engine.SeqScan{Table: "orders"},
			Probe:        &engine.SeqScan{Table: "lineitem", Filter: pred},
			BuildCol:     expr.ColumnRef{Table: "orders", Column: "o_orderkey"},
			ProbeCol:     expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"},
			BuildRowsEst: est,
		}
		if dop > 0 {
			n = &engine.Exchange{Source: n, DOP: dop}
		}
		return n
	}
	est := 0.6 * float64(buildRows) // within the 2x pre-size headroom

	rep := report{
		CPUs:              runtime.NumCPU(),
		NumCPU:            runtime.NumCPU(),
		WaivedGates:       []string{},
		Lines:             lines,
		BuildRows:         buildRows,
		Reps:              reps,
		IdenticalRows:     true,
		IdenticalCounters: true,
		MinSpeedup:        minSpeedup,
		SpeedupEnforced:   runtime.NumCPU() >= 4,
	}

	// Identity gate: the serial plan is the reference; Exchange at DOP
	// 1, 2, and 4 must reproduce its rows (in order) and its counters.
	var baseHash uint64
	var baseCounters cost.Counters
	for i, dop := range []int{0, 1, 2, 4} {
		var c cost.Counters
		res, err := plan(dop, est).Execute(ctx, &c)
		if err != nil {
			return fmt.Errorf("dop=%d: %v", dop, err)
		}
		h := fnv.New64a()
		for _, r := range res.Rows {
			for _, v := range r {
				fmt.Fprint(h, v.String(), "\x1f")
			}
			fmt.Fprint(h, "\x1e")
		}
		if i == 0 {
			baseHash, baseCounters, rep.Rows = h.Sum64(), c, len(res.Rows)
			continue
		}
		if h.Sum64() != baseHash {
			rep.IdenticalRows = false
		}
		if c != baseCounters {
			rep.IdenticalCounters = false
		}
	}

	// Pre-sizing gate, measured through the metrics registry. One
	// estimated parallel run: zero rehashes, a pre-size hit, and a
	// partitioned build. One unsized run: modeled growth.
	sized := obs.NewRegistry()
	ctx.Metrics = sized
	if _, err := plan(4, est).Execute(ctx, &cost.Counters{}); err != nil {
		return err
	}
	rep.PresizeHits = sized.Counter("robustqo_hashjoin_presize_hits_total").Value()
	rep.PresizeRehashes = sized.Counter("robustqo_hashjoin_rehashes_total").Value()
	rep.ParallelBuilds = sized.Counter("robustqo_hashjoin_parallel_builds_total").Value()
	unsized := obs.NewRegistry()
	ctx.Metrics = unsized
	if _, err := plan(0, 0).Execute(ctx, &cost.Counters{}); err != nil {
		return err
	}
	rep.UnderestimateRehashes = unsized.Counter("robustqo_hashjoin_rehashes_total").Value()
	ctx.Metrics = nil

	// Timing, best-of-reps per DOP.
	times := make([]float64, 3)
	for i, dop := range []int{0, 2, 4} {
		n := plan(dop, est)
		best := math.MaxFloat64
		for r := 0; r < reps; r++ {
			var execErr error
			res := testing.Benchmark(func(b *testing.B) {
				for j := 0; j < b.N; j++ {
					var c cost.Counters
					if _, err := n.Execute(ctx, &c); err != nil {
						execErr = err
						b.FailNow()
					}
				}
			})
			if execErr != nil {
				return execErr
			}
			if v := float64(res.NsPerOp()); v < best {
				best = v
			}
		}
		times[i] = best
	}
	rep.SerialNsPerOp, rep.DOP2NsPerOp, rep.DOP4NsPerOp = times[0], times[1], times[2]
	rep.SpeedupDOP2 = times[0] / times[1]
	rep.SpeedupDOP4 = times[0] / times[2]
	if !rep.SpeedupEnforced {
		rep.SpeedupWaiver = fmt.Sprintf("only %d CPUs; a DOP=4 wall-clock gate needs at least 4", rep.CPUs)
		rep.WaivedGates = append(rep.WaivedGates, "dop4_speedup")
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("join pipeline: %.0f ns serial, speedup %.2fx @2, %.2fx @4 (%d rows)\n",
		rep.SerialNsPerOp, rep.SpeedupDOP2, rep.SpeedupDOP4, rep.Rows)
	fmt.Printf("pre-sizing: %d hits, %d rehashes sized, %d rehashes unsized, %d parallel builds; report: %s\n",
		rep.PresizeHits, rep.PresizeRehashes, rep.UnderestimateRehashes, rep.ParallelBuilds, out)

	if !rep.IdenticalRows {
		return fmt.Errorf("parallel join rows diverge from serial")
	}
	if !rep.IdenticalCounters {
		return fmt.Errorf("parallel join counters diverge from serial")
	}
	if rep.PresizeRehashes != 0 {
		return fmt.Errorf("estimate within 2x of %d build rows still recorded %d rehashes", buildRows, rep.PresizeRehashes)
	}
	if rep.PresizeHits < 1 {
		return fmt.Errorf("estimated build recorded no pre-size hit")
	}
	if rep.ParallelBuilds < 1 {
		return fmt.Errorf("DOP=4 build over %d rows did not partition", buildRows)
	}
	if rep.UnderestimateRehashes == 0 {
		return fmt.Errorf("unsized build recorded no modeled rehashes")
	}
	if rep.SpeedupEnforced && rep.SpeedupDOP4 < minSpeedup {
		return fmt.Errorf("DOP=4 speedup %.2fx below the %.1fx floor", rep.SpeedupDOP4, minSpeedup)
	}
	return nil
}
