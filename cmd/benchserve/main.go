// Command benchserve gates what the serving stack must deliver under
// sustained concurrent load. Phase one measures the optimize phase in
// isolation: a cache-hit lookup must be at least 5x faster than a cold
// optimization across the four corpus shapes (enforced on every
// machine). Phase two runs a closed-loop HTTP load over the 40-query
// corpus with a configurable template-repeat ratio and gates the cache
// hit rate at 80%, recording client-side p50/p99 latency and QPS; the
// wall-clock latency/QPS gates only bite on machines with at least 4
// CPUs, like benchshard's DOP gate. Phase three overloads a tiny
// admission gate and requires bounded behavior: every response is
// either 200 or 429, at least one request is shed, and no goroutine
// outlives the burst. Results land in a JSON report (BENCH_serve.json
// in CI) with num_cpu and waived_gates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"robustqo/internal/core"
	"robustqo/internal/engine"
	"robustqo/internal/obs"
	"robustqo/internal/optimizer"
	"robustqo/internal/plancache"
	"robustqo/internal/sample"
	"robustqo/internal/sqlparse"
	"robustqo/internal/stats"
	"robustqo/internal/tpch"
)

type report struct {
	NumCPU      int     `json:"num_cpu"`
	Lines       int     `json:"lines"`
	Workers     int     `json:"workers"`
	Requests    int     `json:"requests"`
	RepeatRatio float64 `json:"repeat_ratio"`

	// Optimize-phase speedup on cache hits (enforced everywhere).
	ColdOptimizeNs     float64 `json:"cold_optimize_ns"`
	HitPathNs          float64 `json:"hit_path_ns"`
	OptimizeSpeedup    float64 `json:"optimize_speedup"`
	MinOptimizeSpeedup float64 `json:"min_optimize_speedup"`

	// Closed-loop serving phase.
	CacheHits    int64   `json:"cache_hits"`
	CacheRebinds int64   `json:"cache_rebinds"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheRejects int64   `json:"cache_rejects"`
	HitRate      float64 `json:"hit_rate"`
	MinHitRate   float64 `json:"min_hit_rate"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxP99Ms     float64 `json:"max_p99_ms"`
	QPS          float64 `json:"qps"`
	MinQPS       float64 `json:"min_qps"`

	// Overload leg: bounded queue + shedding + clean unwind.
	OverloadRequests int      `json:"overload_requests"`
	OverloadOK       int      `json:"overload_ok"`
	OverloadShed     int      `json:"overload_shed"`
	OverloadBounded  bool     `json:"overload_bounded"`
	GoroutinesBefore int      `json:"goroutines_before"`
	GoroutinesAfter  int      `json:"goroutines_after"`
	NoGoroutineLeak  bool     `json:"no_goroutine_leak"`
	LatencyQPSWaived bool     `json:"latency_qps_waived"`
	WaivedGates      []string `json:"waived_gates"`
}

// corpus is the same 40-query workload `robustqo ledger run` and the
// differential tests execute: four SPJ shapes with literals swept so
// same-shape queries share a plan-cache template but not bindings.
func corpus() []string {
	months := []string{"01", "03", "05", "07", "09"}
	var qs []string
	for i := 0; i < 40; i++ {
		v := i / 4
		switch i % 4 {
		case 0:
			qs = append(qs, fmt.Sprintf(
				"SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < %d", 3+v*5))
		case 1:
			m := months[v%len(months)]
			qs = append(qs, fmt.Sprintf(
				"SELECT SUM(l_extendedprice) AS revenue FROM lineitem WHERE l_shipdate BETWEEN DATE '199%d-%s-01' AND DATE '199%d-%s-28'",
				3+v%5, m, 3+v%5, m))
		case 2:
			qs = append(qs, fmt.Sprintf(
				"SELECT COUNT(*) AS n FROM lineitem, orders WHERE o_totalprice < %d AND l_quantity >= %d",
				2000+v*9000, 10+v))
		case 3:
			qs = append(qs, fmt.Sprintf(
				"SELECT COUNT(*) AS n FROM lineitem, orders, part WHERE p_size < %d AND l_quantity < %d",
				5+v*4, 45-v*2))
		}
	}
	return qs
}

func main() {
	out := flag.String("out", "BENCH_serve.json", "report file path")
	lines := flag.Int("lines", 30000, "lineitem rows to generate")
	workers := flag.Int("workers", 2*runtime.NumCPU(), "closed-loop client goroutines")
	requests := flag.Int("requests", 60, "requests per worker")
	repeat := flag.Float64("repeat", 0.9, "probability a request repeats an already-seen template binding")
	minSpeedup := flag.Float64("min-speedup", 5, "fail when cache hits are not this much faster than cold optimization")
	minHitRate := flag.Float64("min-hit-rate", 0.8, "fail when the cached-plan rate is below this")
	maxP99 := flag.Float64("max-p99-ms", 500, "fail when client-side p99 exceeds this (needs >=4 CPUs)")
	minQPS := flag.Float64("min-qps", 50, "fail when throughput is below this (needs >=4 CPUs)")
	flag.Parse()
	if err := run(*out, *lines, *workers, *requests, *repeat, *minSpeedup, *minHitRate, *maxP99, *minQPS); err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
}

func run(out string, lines, workers, requests int, repeat, minSpeedup, minHitRate, maxP99, minQPS float64) error {
	db, err := tpch.Generate(tpch.Config{Lines: lines, Seed: 2005})
	if err != nil {
		return err
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		return err
	}
	syn, err := sample.BuildAll(db, sample.DefaultSize, stats.NewRNG(2005^0x5a4d))
	if err != nil {
		return err
	}
	est, err := core.NewBayesEstimator(syn, core.ConfidenceThreshold(0.8))
	if err != nil {
		return err
	}
	opt, err := optimizer.New(ctx, est)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	ctx.Metrics = reg
	rep := report{
		NumCPU: runtime.NumCPU(), Lines: lines, Workers: workers,
		Requests: workers * requests, RepeatRatio: repeat,
		MinOptimizeSpeedup: minSpeedup, MinHitRate: minHitRate,
		MaxP99Ms: maxP99, MinQPS: minQPS, WaivedGates: []string{},
	}

	cache := plancache.New(1024, reg)
	env := plancache.Env{
		Ctx: ctx, Est: est, DOP: 1,
		Optimize: func(q *optimizer.Query) (*optimizer.Plan, error) { return opt.Optimize(q) },
	}

	if err := optimizeSpeedup(cache, env, opt, &rep); err != nil {
		return err
	}
	if err := loadPhase(ctx, cache, env, reg, workers, requests, repeat, &rep); err != nil {
		return err
	}
	if err := overloadPhase(ctx, cache, env, &rep); err != nil {
		return err
	}

	rep.LatencyQPSWaived = rep.NumCPU < 4
	if rep.LatencyQPSWaived {
		rep.WaivedGates = append(rep.WaivedGates, "p99_latency", "min_qps")
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("optimize: %.0f ns cold vs %.0f ns hit (%.1fx)\n",
		rep.ColdOptimizeNs, rep.HitPathNs, rep.OptimizeSpeedup)
	fmt.Printf("load: %d requests, hit rate %.1f%%, p50 %.2f ms, p99 %.2f ms, %.0f qps\n",
		rep.Requests, rep.HitRate*100, rep.P50Ms, rep.P99Ms, rep.QPS)
	fmt.Printf("overload: %d ok, %d shed of %d; bounded=%v leak-free=%v; report: %s\n",
		rep.OverloadOK, rep.OverloadShed, rep.OverloadRequests, rep.OverloadBounded, rep.NoGoroutineLeak, out)

	if rep.OptimizeSpeedup < minSpeedup {
		return fmt.Errorf("cache-hit path is only %.1fx faster than cold optimization, floor is %.1fx",
			rep.OptimizeSpeedup, minSpeedup)
	}
	if rep.HitRate < minHitRate {
		return fmt.Errorf("cached-plan rate %.1f%% below the %.0f%% floor", rep.HitRate*100, minHitRate*100)
	}
	if !rep.OverloadBounded {
		return fmt.Errorf("overload produced unexpected responses: %d ok + %d shed of %d",
			rep.OverloadOK, rep.OverloadShed, rep.OverloadRequests)
	}
	if rep.OverloadShed == 0 {
		return fmt.Errorf("overload burst was never shed despite 2 slots + 2 queue seats")
	}
	if !rep.NoGoroutineLeak {
		return fmt.Errorf("goroutines grew from %d to %d across the overload burst",
			rep.GoroutinesBefore, rep.GoroutinesAfter)
	}
	if !rep.LatencyQPSWaived {
		if rep.P99Ms > maxP99 {
			return fmt.Errorf("client-side p99 %.1f ms exceeds the %.0f ms ceiling", rep.P99Ms, maxP99)
		}
		if rep.QPS < minQPS {
			return fmt.Errorf("throughput %.0f qps below the %.0f floor", rep.QPS, minQPS)
		}
	}
	return nil
}

// optimizeSpeedup times a cold optimization against a warm cache lookup
// for each of the four corpus shapes and gates the aggregate ratio.
func optimizeSpeedup(cache *plancache.Cache, env plancache.Env, opt *optimizer.Optimizer, rep *report) error {
	shapes := corpus()[:4]
	var coldTotal, hitTotal float64
	for _, sqlText := range shapes {
		q, err := sqlparse.Parse(sqlText)
		if err != nil {
			return err
		}
		var optErr error
		cold := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := opt.Optimize(q); err != nil {
					optErr = err
					b.FailNow()
				}
			}
		})
		if optErr != nil {
			return optErr
		}
		// Warm the entry, then time the pure hit path: normalize, key,
		// lookup, parameter comparison — no quantiling, no enumeration.
		if _, _, err := cache.Plan(env, q); err != nil {
			return err
		}
		hit := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := cache.Plan(env, q); err != nil {
					optErr = err
					b.FailNow()
				}
			}
		})
		if optErr != nil {
			return optErr
		}
		coldTotal += float64(cold.NsPerOp())
		hitTotal += float64(hit.NsPerOp())
	}
	rep.ColdOptimizeNs, rep.HitPathNs = coldTotal, hitTotal
	if hitTotal > 0 {
		rep.OptimizeSpeedup = coldTotal / hitTotal
	}
	return nil
}

// serveHandler is the minimal serving pipeline the load phases drive
// over HTTP: admission, plan cache, execution.
func serveHandler(ctx *engine.Context, cache *plancache.Cache, env plancache.Env, adm *plancache.Admission) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, err := adm.Admit(r.Context())
		if err != nil {
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		}
		defer release()
		q, err := sqlparse.Parse(r.FormValue("sql"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		plan, _, err := cache.Plan(env, q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, _, _, err := engine.Run(ctx, plan.Root)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "%d rows\n", len(res.Rows))
	}
}

// loadPhase drives a closed loop of workers over the corpus: with
// probability repeat each request re-issues a binding the worker has
// already sent (a template the cache has seen), otherwise it advances
// to the next binding in the sweep.
func loadPhase(ctx *engine.Context, cache *plancache.Cache, env plancache.Env, reg *obs.Registry, workers, requests int, repeat float64, rep *report) error {
	adm := plancache.NewAdmission(plancache.AdmissionConfig{
		Slots: 2 * runtime.NumCPU(), MaxQueue: workers * requests,
		QueueTimeout: time.Minute,
	}, 2*runtime.NumCPU(), reg)
	ts := httptest.NewServer(serveHandler(ctx, cache, env, adm))
	defer ts.Close()

	// Counter baselines: the optimize-speedup benchmark already drove
	// millions of lookups through the cache; the hit rate must reflect
	// only the load phase.
	base := map[string]int64{
		"robustqo_plancache_hits_total":    reg.Counter("robustqo_plancache_hits_total").Value(),
		"robustqo_plancache_rebinds_total": reg.Counter("robustqo_plancache_rebinds_total").Value(),
		"robustqo_plancache_misses_total":  reg.Counter("robustqo_plancache_misses_total").Value(),
		"robustqo_plancache_rejects_total": reg.Counter("robustqo_plancache_rejects_total").Value(),
	}

	qs := corpus()
	latencies := make([][]time.Duration, workers)
	errs := make(chan error, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wi) + 7))
			cursor := wi % len(qs)
			seen := []string{qs[cursor]}
			for i := 0; i < requests; i++ {
				var sqlText string
				if rng.Float64() < repeat {
					sqlText = seen[rng.Intn(len(seen))]
				} else {
					cursor = (cursor + 1) % len(qs)
					sqlText = qs[cursor]
					seen = append(seen, sqlText)
				}
				t0 := time.Now()
				resp, err := http.Get(ts.URL + "/?sql=" + url.QueryEscape(sqlText))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d: status %d", wi, resp.StatusCode)
					return
				}
				latencies[wi] = append(latencies[wi], time.Since(t0))
			}
		}(wi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	wall := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / float64(time.Millisecond)
	}
	rep.P50Ms, rep.P99Ms = pct(0.50), pct(0.99)
	rep.QPS = float64(len(all)) / wall.Seconds()

	rep.CacheHits = reg.Counter("robustqo_plancache_hits_total").Value() - base["robustqo_plancache_hits_total"]
	rep.CacheRebinds = reg.Counter("robustqo_plancache_rebinds_total").Value() - base["robustqo_plancache_rebinds_total"]
	rep.CacheMisses = reg.Counter("robustqo_plancache_misses_total").Value() - base["robustqo_plancache_misses_total"]
	rep.CacheRejects = reg.Counter("robustqo_plancache_rejects_total").Value() - base["robustqo_plancache_rejects_total"]
	total := rep.CacheHits + rep.CacheRebinds + rep.CacheMisses + rep.CacheRejects
	if total > 0 {
		rep.HitRate = float64(rep.CacheHits+rep.CacheRebinds) / float64(total)
	}
	return nil
}

// overloadPhase slams a 2-slot, 2-seat admission gate with a burst four
// times its capacity: responses must be only 200 or 429, some must be
// shed, and every goroutine must unwind.
func overloadPhase(ctx *engine.Context, cache *plancache.Cache, env plancache.Env, rep *report) error {
	adm := plancache.NewAdmission(plancache.AdmissionConfig{
		Slots: 2, MaxQueue: 2, QueueTimeout: 20 * time.Millisecond,
	}, 2, nil)
	ts := httptest.NewServer(serveHandler(ctx, cache, env, adm))
	defer ts.Close()

	rep.GoroutinesBefore = runtime.NumGoroutine()
	const burst = 16
	rep.OverloadRequests = burst
	sqlText := url.QueryEscape(corpus()[2])
	codes := make([]int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/?sql=" + sqlText)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	rep.OverloadBounded = true
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			rep.OverloadOK++
		case http.StatusTooManyRequests:
			rep.OverloadShed++
		default:
			rep.OverloadBounded = false
		}
	}
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > rep.GoroutinesBefore+4 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	rep.GoroutinesAfter = runtime.NumGoroutine()
	rep.NoGoroutineLeak = rep.GoroutinesAfter <= rep.GoroutinesBefore+4
	return nil
}
