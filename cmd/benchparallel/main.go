// Command benchparallel measures what the morsel-driven Exchange
// operator buys and proves what it must not change. It times a
// scan-heavy and a join-heavy full drain at DOP 1, 2, and 4, checks the
// rows and cost counters are identical at every DOP (the engine's
// counter-exactness contract — always enforced), drives the optimizer's
// star-join enumeration to measure the posterior-quantile cache hit
// rate, and writes the lot to a JSON report (BENCH_parallel.json in
// CI). The speedup gate only bites on machines with enough cores to
// make it meaningful; the identity and cache gates bite everywhere.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"testing"

	"robustqo/internal/core"
	"robustqo/internal/cost"
	"robustqo/internal/engine"
	"robustqo/internal/expr"
	"robustqo/internal/optimizer"
	"robustqo/internal/sample"
	"robustqo/internal/sqlparse"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/tpch"
)

type workload struct {
	Name              string  `json:"name"`
	SerialNsPerOp     float64 `json:"serial_ns_per_op"`
	DOP2NsPerOp       float64 `json:"dop2_ns_per_op"`
	DOP4NsPerOp       float64 `json:"dop4_ns_per_op"`
	SpeedupDOP2       float64 `json:"speedup_dop2"`
	SpeedupDOP4       float64 `json:"speedup_dop4"`
	Rows              int     `json:"rows"`
	IdenticalRows     bool    `json:"identical_rows"`
	IdenticalCounters bool    `json:"identical_counters"`
}

type report struct {
	CPUs            int      `json:"cpus"`
	NumCPU          int      `json:"num_cpu"`
	Lines           int      `json:"lines"`
	Reps            int      `json:"reps"`
	ScanHeavy       workload `json:"scan_heavy"`
	JoinHeavy       workload `json:"join_heavy"`
	MinSpeedup      float64  `json:"min_speedup"`
	SpeedupEnforced bool     `json:"speedup_enforced"`
	SpeedupWaiver   string   `json:"speedup_waiver,omitempty"`
	CacheHits       int64    `json:"quantile_cache_hits"`
	CacheMisses     int64    `json:"quantile_cache_misses"`
	CacheHitRate    float64  `json:"quantile_cache_hit_rate"`
	MinHitRate      float64  `json:"min_hit_rate"`
	WaivedGates     []string `json:"waived_gates"`
}

func main() {
	out := flag.String("out", "BENCH_parallel.json", "report file path")
	lines := flag.Int("lines", 60000, "lineitem rows to generate")
	reps := flag.Int("reps", 3, "benchmark repetitions (best-of)")
	minSpeedup := flag.Float64("min-speedup", 1.8, "fail when the DOP=4 scan speedup is below this (needs >=4 CPUs)")
	minHitRate := flag.Float64("min-hit-rate", 0.90, "fail when the quantile-cache hit rate is below this")
	flag.Parse()
	if err := run(*out, *lines, *reps, *minSpeedup, *minHitRate); err != nil {
		fmt.Fprintln(os.Stderr, "benchparallel:", err)
		os.Exit(1)
	}
}

func run(out string, lines, reps int, minSpeedup, minHitRate float64) error {
	db, err := tpch.Generate(tpch.Config{Lines: lines, Seed: 2005})
	if err != nil {
		return err
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		return err
	}

	// Scan-heavy: the predicate is evaluated for every lineitem row, and
	// under Exchange that evaluation is what the workers split. It is
	// deliberately selective — the parallel work is the full-table scan
	// and filter, while the serial merge only carries the survivors.
	pred, err := expr.Parse("l_quantity >= 45 AND l_extendedprice BETWEEN 100 AND 20000")
	if err != nil {
		return err
	}
	scanPlan := func(dop int) engine.Node {
		var n engine.Node = &engine.SeqScan{Table: "lineitem", Filter: pred}
		if dop > 1 {
			n = &engine.Exchange{Source: n, DOP: dop}
		}
		return n
	}
	// Join-heavy: both hash-join inputs are Exchange-wrapped, so the
	// build partitions across workers before the shared probe phase.
	joinPlan := func(dop int) engine.Node {
		var build engine.Node = &engine.SeqScan{Table: "orders"}
		var probe engine.Node = &engine.SeqScan{Table: "lineitem", Filter: pred}
		if dop > 1 {
			build = &engine.Exchange{Source: build, DOP: dop}
			probe = &engine.Exchange{Source: probe, DOP: dop}
		}
		return &engine.HashJoin{
			Build:    build,
			Probe:    probe,
			BuildCol: expr.ColumnRef{Table: "orders", Column: "o_orderkey"},
			ProbeCol: expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"},
		}
	}

	scan, err := measureWorkload(ctx, "scan-heavy seqscan+filter", scanPlan, reps)
	if err != nil {
		return err
	}
	join, err := measureWorkload(ctx, "join-heavy hashjoin", joinPlan, reps)
	if err != nil {
		return err
	}

	hits, misses, err := cacheWorkload(db)
	if err != nil {
		return err
	}

	rep := report{
		CPUs:            runtime.NumCPU(),
		NumCPU:          runtime.NumCPU(),
		WaivedGates:     []string{},
		Lines:           lines,
		Reps:            reps,
		ScanHeavy:       scan,
		JoinHeavy:       join,
		MinSpeedup:      minSpeedup,
		SpeedupEnforced: runtime.NumCPU() >= 4,
		CacheHits:       hits,
		CacheMisses:     misses,
		CacheHitRate:    float64(hits) / float64(hits+misses),
		MinHitRate:      minHitRate,
	}
	if !rep.SpeedupEnforced {
		rep.SpeedupWaiver = fmt.Sprintf("only %d CPUs; a DOP=4 wall-clock gate needs at least 4", rep.CPUs)
		rep.WaivedGates = append(rep.WaivedGates, "dop4_speedup")
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("scan-heavy: %.0f ns serial, speedup %.2fx @2, %.2fx @4\n",
		scan.SerialNsPerOp, scan.SpeedupDOP2, scan.SpeedupDOP4)
	fmt.Printf("join-heavy: %.0f ns serial, speedup %.2fx @2, %.2fx @4\n",
		join.SerialNsPerOp, join.SpeedupDOP2, join.SpeedupDOP4)
	fmt.Printf("quantile cache: %d hits / %d misses (%.1f%% hit rate); report: %s\n",
		hits, misses, rep.CacheHitRate*100, out)

	for _, w := range []workload{scan, join} {
		if !w.IdenticalRows {
			return fmt.Errorf("%s: parallel rows diverge from serial", w.Name)
		}
		if !w.IdenticalCounters {
			return fmt.Errorf("%s: parallel counters diverge from serial", w.Name)
		}
	}
	if rep.SpeedupEnforced && scan.SpeedupDOP4 < minSpeedup {
		return fmt.Errorf("scan-heavy DOP=4 speedup %.2fx below the %.1fx floor", scan.SpeedupDOP4, minSpeedup)
	}
	if rep.CacheHitRate < minHitRate {
		return fmt.Errorf("quantile-cache hit rate %.1f%% below the %.0f%% floor",
			rep.CacheHitRate*100, minHitRate*100)
	}
	return nil
}

// measureWorkload drains the plan at DOP 1, 2, and 4, requiring the
// rows and counters to be identical, and times each DOP best-of-reps.
func measureWorkload(ctx *engine.Context, name string, plan func(dop int) engine.Node, reps int) (workload, error) {
	w := workload{Name: name, IdenticalRows: true, IdenticalCounters: true}
	var baseHash uint64
	var baseCounters cost.Counters
	for i, dop := range []int{1, 2, 4} {
		var c cost.Counters
		res, err := plan(dop).Execute(ctx, &c)
		if err != nil {
			return w, fmt.Errorf("%s dop=%d: %v", name, dop, err)
		}
		h := fnv.New64a()
		for _, r := range res.Rows {
			for _, v := range r {
				fmt.Fprint(h, v.String(), "\x1f")
			}
			fmt.Fprint(h, "\x1e")
		}
		if i == 0 {
			baseHash, baseCounters, w.Rows = h.Sum64(), c, len(res.Rows)
			continue
		}
		if h.Sum64() != baseHash {
			w.IdenticalRows = false
		}
		if c != baseCounters {
			w.IdenticalCounters = false
		}
	}
	times := make([]float64, 3)
	for i, dop := range []int{1, 2, 4} {
		n := plan(dop)
		best := math.MaxFloat64
		for r := 0; r < reps; r++ {
			var execErr error
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var c cost.Counters
					if _, err := n.Execute(ctx, &c); err != nil {
						execErr = err
						b.FailNow()
					}
				}
			})
			if execErr != nil {
				return w, execErr
			}
			if v := float64(res.NsPerOp()); v < best {
				best = v
			}
		}
		times[i] = best
	}
	w.SerialNsPerOp, w.DOP2NsPerOp, w.DOP4NsPerOp = times[0], times[1], times[2]
	w.SpeedupDOP2 = times[0] / times[1]
	w.SpeedupDOP4 = times[0] / times[2]
	return w, nil
}

// cacheWorkload reruns the optimizer's enumeration of a three-table
// star join against one shared robust estimator: after the first pass
// fills the posterior-quantile cache, every later pass should answer
// its quantile lookups from memory.
func cacheWorkload(db *storage.Database) (hits, misses int64, err error) {
	ctx, err := engine.NewContext(db)
	if err != nil {
		return 0, 0, err
	}
	syn, err := sample.BuildAll(db, sample.DefaultSize, stats.NewRNG(2005^0xbeef))
	if err != nil {
		return 0, 0, err
	}
	est, err := core.NewBayesEstimator(syn, core.ConfidenceThreshold(0.8))
	if err != nil {
		return 0, 0, err
	}
	q, err := sqlparse.Parse("SELECT COUNT(*) FROM lineitem, orders, part " +
		"WHERE l_shipdate >= DATE '1997-01-01' AND o_totalprice < 40000 AND p_size < 30")
	if err != nil {
		return 0, 0, err
	}
	const enumerations = 12
	for i := 0; i < enumerations; i++ {
		opt, err := optimizer.New(ctx, est)
		if err != nil {
			return 0, 0, err
		}
		if _, err := opt.Optimize(q); err != nil {
			return 0, 0, err
		}
	}
	hits, misses = est.Quantiles.Stats()
	if hits+misses == 0 {
		return 0, 0, fmt.Errorf("star-join enumeration never consulted the quantile cache")
	}
	return hits, misses, nil
}
