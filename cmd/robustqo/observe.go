package main

// Observability plumbing shared by the query, sql, and serve
// subcommands: the -analyze / -trace-out flags, instrumented execution
// with EXPLAIN ANALYZE rendering, query metrics, and trace export.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"robustqo/internal/core"
	"robustqo/internal/cost"
	"robustqo/internal/engine"
	"robustqo/internal/histogram"
	"robustqo/internal/obs"
	"robustqo/internal/optimizer"
	"robustqo/internal/sample"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
)

// obsFlags are the observability options shared by query and sql.
type obsFlags struct {
	analyze     bool
	traceOut    string
	traceFormat string
}

func (f *obsFlags) register(fs *flag.FlagSet) {
	fs.BoolVar(&f.analyze, "analyze", false,
		"print the EXPLAIN ANALYZE plan tree (estimated vs actual rows, Q-error, timings)")
	fs.StringVar(&f.traceOut, "trace-out", "",
		"write the optimizer+execution trace to this file")
	fs.StringVar(&f.traceFormat, "trace-format", "json",
		"trace file format: json or chrome (chrome://tracing)")
}

// trace returns the trace to thread through the optimizer and engine:
// non-nil only when an export was requested.
func (f *obsFlags) trace() *obs.Trace {
	if f.traceOut == "" {
		return nil
	}
	return obs.NewTrace("robustqo")
}

// buildEstimator constructs the named cardinality estimator over the
// generated database.
func buildEstimator(db *storage.Database, name string, threshold float64, sampleSize int, seed uint64) (core.Estimator, error) {
	switch name {
	case "robust":
		syn, err := sample.BuildAll(db, sampleSize, stats.NewRNG(seed^0xbeef))
		if err != nil {
			return nil, err
		}
		return core.NewBayesEstimator(syn, core.ConfidenceThreshold(threshold))
	case "histogram":
		hists, err := histogram.BuildAll(db)
		if err != nil {
			return nil, err
		}
		return core.NewHistogramEstimator(hists, db.Catalog)
	default:
		return nil, fmt.Errorf("unknown estimator %q", name)
	}
}

// executePlan runs the plan under instrumentation (a zero-overhead
// pass-through when tracing is off — see the parity tests in
// internal/engine), prints the simulated-execution line, renders the
// EXPLAIN ANALYZE tree when requested, records query metrics into the
// default registry, and exports the trace.
func executePlan(ctx *engine.Context, plan *optimizer.Plan, tr *obs.Trace, f *obsFlags, out io.Writer) (*engine.Result, error) {
	inst := engine.InstrumentTrace(plan.Root, tr)
	var counters cost.Counters
	res, err := inst.Execute(ctx, &counters)
	if err != nil {
		return nil, err
	}
	counters.Output += int64(len(res.Rows))
	fmt.Fprintf(out, "simulated execution: %.4f s  (%s)\n", ctx.Model.Time(counters), counters)
	if f.analyze {
		fmt.Fprint(out, "EXPLAIN ANALYZE:\n")
		fmt.Fprint(out, engine.ExplainAnalyze(inst, engine.AnalyzeOptions{
			EstimateOf: plan.EstimateOf,
			Timings:    true,
		}))
	}
	recordQueryMetrics(obs.Default, plan, inst)
	if f.traceOut != "" {
		if err := exportTrace(tr, f.traceOut, f.traceFormat); err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "trace written to %s (%d spans, %s format)\n", f.traceOut, tr.Len(), f.traceFormat)
	}
	return res, nil
}

// recordQueryMetrics feeds one executed query into the metrics
// registry: totals, the chosen join order keyed by the confidence
// threshold it was planned under, and the per-operator-type Q-error
// distribution (plan-vs-actual cardinality feedback).
func recordQueryMetrics(reg *obs.Registry, plan *optimizer.Plan, inst *engine.Instrumented) {
	reg.Counter("robustqo_queries_total").Inc()
	reg.Counter("robustqo_rows_returned_total").Add(inst.Stats.Rows)
	reg.Counter("robustqo_plans_total",
		obs.Label{Key: "order", Value: strings.Join(engine.LeafTables(inst), ",")},
		obs.Label{Key: "t", Value: fmt.Sprintf("%g", plan.Confidence())},
	).Inc()
	var walk func(in *engine.Instrumented)
	walk = func(in *engine.Instrumented) {
		if est, ok := plan.EstimateOf(in.Origin); ok {
			reg.Histogram("robustqo_qerror", obs.QErrorBuckets,
				obs.Label{Key: "op", Value: engine.OpName(in)},
			).Observe(obs.QError(est.Rows, float64(in.Stats.Rows)))
		}
		for _, k := range in.Kids {
			walk(k)
		}
	}
	walk(inst)
}

// exportTrace writes the trace to path in the requested format.
func exportTrace(tr *obs.Trace, path, format string) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case "json":
		err = tr.WriteJSON(fh)
	case "chrome":
		err = tr.WriteChrome(fh)
	default:
		err = fmt.Errorf("unknown trace format %q (want json or chrome)", format)
	}
	if cerr := fh.Close(); err == nil {
		err = cerr
	}
	return err
}
