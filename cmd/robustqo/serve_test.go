package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := newServer(5000, "robust", 0.8, 500, 2005, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeQueryMetricsAndPprof(t *testing.T) {
	ts := testServer(t)

	// Fresh server: metrics exist but empty, index names the endpoints.
	code, body := get(t, ts.URL+"/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: code %d body %q", code, body)
	}

	sql := url.QueryEscape("SELECT l_id FROM lineitem WHERE l_shipdate BETWEEN DATE '1997-07-01' AND DATE '1997-09-30' LIMIT 3")
	code, body = get(t, ts.URL+"/query?analyze=1&sql="+sql)
	if code != http.StatusOK {
		t.Fatalf("query: code %d body %q", code, body)
	}
	for _, want := range []string{"EXPLAIN ANALYZE:", "est=", "act=", "T=80%", "(3 rows)"} {
		if !strings.Contains(body, want) {
			t.Errorf("query response missing %q:\n%s", want, body)
		}
	}

	// Per-request threshold: the T annotation follows the URL parameter.
	code, body = get(t, ts.URL+"/query?analyze=1&threshold=0.95&sql="+sql)
	if code != http.StatusOK || !strings.Contains(body, "T=95%") {
		t.Errorf("threshold override: code %d body:\n%s", code, body)
	}

	// Both queries landed in the registry.
	code, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code %d", code)
	}
	for _, want := range []string{
		"robustqo_queries_total 2",
		"robustqo_rows_returned_total 6",
		`robustqo_plans_total{order="lineitem",t="0.8"} 1`,
		`robustqo_plans_total{order="lineitem",t="0.95"} 1`,
		`robustqo_qerror_count{op="Limit"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, ts.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: code %d", code)
	}
}

func TestServeLedgerAndQueriesEndpoints(t *testing.T) {
	ts := testServer(t)

	// Empty state renders, with zero counts.
	code, body := get(t, ts.URL+"/debug/ledger")
	if code != http.StatusOK || !strings.Contains(body, "0 fingerprints, 0 observations") {
		t.Fatalf("empty ledger: code %d body %q", code, body)
	}
	code, body = get(t, ts.URL+"/debug/queries")
	if code != http.StatusOK || !strings.Contains(body, "0 in-flight queries") {
		t.Fatalf("empty queries: code %d body %q", code, body)
	}

	// A query feeds the ledger: its scan fingerprint shows up with the
	// value-binned literal, and the drift table attributes it to lineitem.
	sql := url.QueryEscape("SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 10")
	if code, body := get(t, ts.URL+"/query?sql="+sql); code != http.StatusOK {
		t.Fatalf("query: code %d body %q", code, body)
	}
	code, body = get(t, ts.URL+"/debug/ledger?n=5")
	if code != http.StatusOK {
		t.Fatalf("ledger: code %d", code)
	}
	for _, want := range []string{"lineitem|l_quantity<b4", "per-table drift:", "lineitem"} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/ledger missing %q:\n%s", want, body)
		}
	}
	if code, _ := get(t, ts.URL+"/debug/ledger?n=nope"); code != http.StatusBadRequest {
		t.Errorf("bad n: code %d, want 400", code)
	}

	// The ledger and latency series land in /metrics.
	code, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code %d", code)
	}
	for _, want := range []string{
		"robustqo_ledger_appends_total",
		"robustqo_ledger_qerror_count",
		"robustqo_query_latency_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestServeQueryErrors(t *testing.T) {
	ts := testServer(t)
	for _, tc := range []struct {
		name, path string
	}{
		{"missing sql", "/query"},
		{"bad sql", "/query?sql=" + url.QueryEscape("DELETE FROM lineitem")},
		{"bad threshold", "/query?threshold=nope&sql=" + url.QueryEscape("SELECT * FROM lineitem LIMIT 1")},
		{"threshold out of range", "/query?threshold=1.5&sql=" + url.QueryEscape("SELECT * FROM lineitem LIMIT 1")},
		{"unknown table", "/query?sql=" + url.QueryEscape("SELECT * FROM ghost")},
	} {
		if code, _ := get(t, ts.URL+tc.path); code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", tc.name, code)
		}
	}
	if code, _ := get(t, ts.URL+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path not 404: %d", code)
	}
}
