package main

import (
	"fmt"
	"testing"

	"robustqo/internal/cost"
	"robustqo/internal/engine"
	"robustqo/internal/obs"
	"robustqo/internal/obs/ledger"
	"robustqo/internal/optimizer"
	"robustqo/internal/sqlparse"
	"robustqo/internal/tpch"
)

// TestLedgerInstrumentationDifferential pins the ledger's zero-cost
// contract on results: executing a plan with the full lifecycle sinks
// attached (ledger, live registry, query ID) produces byte-identical
// rows in identical order AND byte-identical cost.Counters versus the
// same plan executed with plain instrumentation and no ledger — across
// the whole 40-query corpus, at DOP 1, 2, and 4, over a 2-shard
// partitioned layout. Run with -race this doubles as the proof that
// ledger appends and live-progress updates race with nothing in the
// parallel drain.
func TestLedgerInstrumentationDifferential(t *testing.T) {
	db, err := tpch.Generate(tpch.Config{Lines: 6000, Partitions: 2, Seed: 2005})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		t.Fatal(err)
	}
	est, err := buildEstimator(db, "robust", 0.8, 500, 2005)
	if err != nil {
		t.Fatal(err)
	}
	led := ledger.New(0)
	for _, dop := range []int{1, 2, 4} {
		for qi, sqlText := range corpusQueries() {
			label := fmt.Sprintf("dop=%d query %d %q", dop, qi, sqlText)
			query, err := sqlparse.Parse(sqlText)
			if err != nil {
				t.Fatalf("%s: parse: %v", label, err)
			}
			opt, err := optimizer.New(ctx, est)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			opt.MaxDOP = dop
			plan, err := opt.Optimize(query)
			if err != nil {
				t.Fatalf("%s: optimize: %v", label, err)
			}

			// Ledger-disabled leg: plain pass-through instrumentation.
			var cOff cost.Counters
			resOff, err := engine.Instrument(plan.Root).Execute(ctx, &cOff)
			if err != nil {
				t.Fatalf("%s: ledger off: %v", label, err)
			}

			// Ledger-enabled leg: same plan, full lifecycle sinks.
			live := &obs.QueryLive{ID: fmt.Sprintf("q%d", qi+1), SQL: sqlText}
			instOn := engine.InstrumentOpts(plan.Root, engine.InstrumentOptions{
				EstimateOf: plan.EstimateOf,
				Ledger:     led,
				QueryID:    live.ID,
				Live:       live,
			})
			before := led.Ordinal()
			var cOn cost.Counters
			resOn, err := instOn.Execute(ctx, &cOn)
			if err != nil {
				t.Fatalf("%s: ledger on: %v", label, err)
			}
			if led.Ordinal() == before {
				t.Fatalf("%s: ledger leg appended no observations; the on leg is not on", label)
			}

			if len(resOn.Rows) != len(resOff.Rows) {
				t.Fatalf("%s: %d rows with ledger, %d without", label, len(resOn.Rows), len(resOff.Rows))
			}
			for i := range resOn.Rows {
				on, off := fmt.Sprintf("%v", resOn.Rows[i]), fmt.Sprintf("%v", resOff.Rows[i])
				if on != off {
					t.Fatalf("%s: row %d differs: %s vs %s", label, i, on, off)
				}
			}
			if cOn != cOff {
				t.Fatalf("%s: counters diverged:\nledger on  %+v\nledger off %+v", label, cOn, cOff)
			}
		}
	}
	if led.Len() == 0 {
		t.Fatal("corpus produced no ledger fingerprints")
	}
}
