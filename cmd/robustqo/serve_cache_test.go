package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"robustqo/internal/plancache"
)

func TestServeQueryPlanCacheHit(t *testing.T) {
	ts := testServer(t)
	sql := url.QueryEscape("SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 10")

	code, body := get(t, ts.URL+"/query?sql="+sql)
	if code != http.StatusOK || !strings.Contains(body, "plan cache: miss") {
		t.Fatalf("cold query: code %d body:\n%s", code, body)
	}
	code, body = get(t, ts.URL+"/query?sql="+sql)
	if code != http.StatusOK || !strings.Contains(body, "plan cache: hit") {
		t.Fatalf("warm query: code %d body:\n%s", code, body)
	}

	code, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code %d", code)
	}
	for _, want := range []string{
		"robustqo_plancache_misses_total 1",
		"robustqo_plancache_hits_total 1",
		"robustqo_admission_admitted_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	// /debug/queries surfaces cache + admission state.
	code, body = get(t, ts.URL+"/debug/queries")
	if code != http.StatusOK {
		t.Fatalf("debug/queries: code %d", code)
	}
	for _, want := range []string{"plan cache: 1 entries", "hits=1", "admission:", "admitted=2"} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/queries missing %q:\n%s", want, body)
		}
	}
}

func TestServePrepareExec(t *testing.T) {
	ts := testServer(t)

	sql := url.QueryEscape("SELECT SUM(l_extendedprice) AS revenue FROM lineitem WHERE l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1995-03-28'")
	code, body := get(t, ts.URL+"/prepare?sql="+sql)
	if code != http.StatusOK {
		t.Fatalf("prepare: code %d body %q", code, body)
	}
	var prep struct {
		Stmt   string `json:"stmt"`
		Params int    `json:"params"`
	}
	if err := json.Unmarshal([]byte(body), &prep); err != nil {
		t.Fatalf("prepare response not JSON: %v\n%s", err, body)
	}
	if prep.Stmt == "" || prep.Params != 2 {
		t.Fatalf("prepare = %+v, want 2 params", prep)
	}

	// First execution optimizes and caches the template's plan.
	code, body = get(t, ts.URL+"/exec?stmt="+prep.Stmt+"&args="+url.QueryEscape("1995-01-01,1995-03-28"))
	if code != http.StatusOK || !strings.Contains(body, "plan cache: miss") {
		t.Fatalf("first exec: code %d body:\n%s", code, body)
	}
	if !strings.Contains(body, "rows)") {
		t.Fatalf("first exec has no row count:\n%s", body)
	}
	// Identical binding: pure cache hit.
	code, body = get(t, ts.URL+"/exec?stmt="+prep.Stmt+"&args="+url.QueryEscape("1995-01-01,1995-03-28"))
	if code != http.StatusOK || !strings.Contains(body, "plan cache: hit") {
		t.Fatalf("repeat exec: code %d body:\n%s", code, body)
	}
	// New binding (day numbers also accepted) skips re-optimization when
	// the estimate stays inside the interval; any cache outcome is
	// legitimate, the request itself must succeed.
	code, body = get(t, ts.URL+"/exec?stmt="+prep.Stmt+"&args="+url.QueryEscape("1995-04-01,1995-06-28"))
	if code != http.StatusOK {
		t.Fatalf("rebound exec: code %d body:\n%s", code, body)
	}

	// Error paths are structured JSON.
	code, body = get(t, ts.URL+"/exec?stmt=nope&args=1,2")
	if code != http.StatusNotFound || !strings.Contains(body, `"unknown_stmt"`) {
		t.Errorf("unknown stmt: code %d body %q", code, body)
	}
	if code, _ := get(t, ts.URL+"/exec?stmt="+prep.Stmt+"&args=1"); code != http.StatusBadRequest {
		t.Errorf("arity mismatch: code %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/exec?stmt="+prep.Stmt+"&args="+url.QueryEscape("abc,def")); code != http.StatusBadRequest {
		t.Errorf("unparseable args: code %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/prepare"); code != http.StatusBadRequest {
		t.Errorf("prepare without sql: code %d, want 400", code)
	}
}

func TestServeOverloadShedsBounded(t *testing.T) {
	s, err := newServer(20000, "robust", 0.8, 500, 2005, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One execution slot, one queue seat, near-immediate queue timeout:
	// concurrent arrivals beyond two must shed.
	s.adm = plancache.NewAdmission(plancache.AdmissionConfig{
		Slots: 1, MaxQueue: 1, QueueTimeout: 5 * time.Millisecond,
	}, 1, s.reg)
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	baseline := runtime.NumGoroutine()
	sql := url.QueryEscape("SELECT COUNT(*) AS n FROM lineitem, orders WHERE o_totalprice < 90000 AND l_quantity >= 10")
	const clients = 8
	codes := make([]int, clients)
	var retryAfter string
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/query?sql=" + sql)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests {
				mu.Lock()
				retryAfter = resp.Header.Get("Retry-After")
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("unexpected status %d under overload", c)
		}
	}
	if ok == 0 {
		t.Error("no request succeeded under overload")
	}
	if shed == 0 {
		t.Error("no request was shed despite slots=1 queue=1")
	}
	if retryAfter == "" {
		t.Error("429 response missing Retry-After header")
	}
	if got := s.reg.Counter("robustqo_admission_shed_total").Value() +
		s.reg.Counter("robustqo_admission_timeouts_total").Value(); got == 0 {
		t.Error("no shed/timeout counters recorded")
	}

	// The gate recovers: a fresh request is admitted.
	if code, body := get(t, ts.URL+"/query?sql="+sql); code != http.StatusOK {
		t.Fatalf("post-overload query: code %d body %q", code, body)
	}

	// No goroutine leak: queued waiters and shed requests all unwound.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+4 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+4 {
		t.Errorf("goroutines grew from %d to %d after overload", baseline, n)
	}
}

func TestServeQueryTimeout(t *testing.T) {
	s, err := newServer(5000, "robust", 0.8, 500, 2005, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.reqTimeout = time.Nanosecond
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	sql := url.QueryEscape("SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 40")
	code, body := get(t, ts.URL+"/query?sql="+sql)
	if code != http.StatusGatewayTimeout || !strings.Contains(body, `"query_timeout"`) {
		t.Fatalf("timed-out query: code %d body %q", code, body)
	}
}

func TestServeShutdownRejects(t *testing.T) {
	s, err := newServer(5000, "robust", 0.8, 500, 2005, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.adm.Close(ctx); err != nil {
		t.Fatal(err)
	}
	sql := url.QueryEscape("SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 10")
	code, body := get(t, ts.URL+"/query?sql="+sql)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"shutting_down"`) {
		t.Fatalf("draining server: code %d body %q", code, body)
	}
}

func TestServeBodyLimit(t *testing.T) {
	s, err := newServer(5000, "robust", 0.8, 500, 2005, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.maxBody = 64
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	big := "sql=" + url.QueryEscape("SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 10"+strings.Repeat(" ", 4096))
	resp, err := http.Post(ts.URL+"/query", "application/x-www-form-urlencoded", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: code %d, want 400", resp.StatusCode)
	}

	// A small POST body still works.
	small := "sql=" + url.QueryEscape("SELECT COUNT(*) AS n FROM lineitem")
	resp2, err := http.Post(ts.URL+"/query", "application/x-www-form-urlencoded", strings.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("small POST body: code %d, want 200", resp2.StatusCode)
	}
}
