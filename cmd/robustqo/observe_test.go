package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSQLAnalyze(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"sql", "-lines", "5000", "-analyze",
		"SELECT l_id FROM lineitem WHERE l_shipdate BETWEEN DATE '1997-07-01' AND DATE '1997-09-30' LIMIT 5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EXPLAIN ANALYZE:", "est=", "act=", "q=", "T=80%", "open=", "next="} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
}

func TestRunQueryTraceExport(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "trace.json")
	var buf bytes.Buffer
	err := run([]string{"query", "-lines", "5000", "-trace-out", jsonPath,
		"l_shipdate BETWEEN DATE '1997-07-01' AND DATE '1997-07-31'"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Trace string `json:"trace"`
		Spans []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, s := range doc.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"optimize", "optimize/join-enumeration", "estimate"} {
		if !names[want] {
			t.Errorf("trace missing %q span; got %d spans", want, len(doc.Spans))
		}
	}
	hasOp := false
	for n := range names {
		if strings.HasPrefix(n, "op:") {
			hasOp = true
		}
	}
	if !hasOp {
		t.Error("trace has no operator spans")
	}

	// Chrome format: the traceEvents envelope chrome://tracing expects.
	chromePath := filepath.Join(dir, "trace_chrome.json")
	buf.Reset()
	err = run([]string{"query", "-lines", "5000", "-trace-out", chromePath,
		"-trace-format", "chrome", "l_shipdate BETWEEN DATE '1997-07-01' AND DATE '1997-07-31'"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 || chrome.TraceEvents[0].Ph != "X" {
		t.Errorf("chrome trace malformed: %+v", chrome.TraceEvents)
	}
}

func TestRunSQLBadTraceFormat(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"sql", "-lines", "2000", "-trace-out", filepath.Join(t.TempDir(), "x"),
		"-trace-format", "bogus", "SELECT l_id FROM lineitem LIMIT 1"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "trace format") {
		t.Errorf("bad format accepted: %v", err)
	}
}
