package main

// The serve subcommand runs a debug HTTP server over a generated
// database: /metrics exposes the text metrics registry, /query
// optimizes and executes ad-hoc SQL (with per-request confidence
// thresholds — the paper's robustness knob as a URL parameter), and the
// standard net/http/pprof endpoints hang off /debug/pprof/.

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"

	"robustqo/internal/core"
	"robustqo/internal/cost"
	"robustqo/internal/engine"
	"robustqo/internal/obs"
	"robustqo/internal/optimizer"
	"robustqo/internal/sample"
	"robustqo/internal/sqlparse"
	"robustqo/internal/tpch"
)

// server holds the shared read-only state behind the debug endpoints.
// The database, indexes, and estimator are immutable after startup;
// the registry is internally synchronized — so handlers need no lock.
type server struct {
	ctx   *engine.Context
	est   core.Estimator
	bayes *core.BayesEstimator // non-nil when est is the robust estimator
	reg   *obs.Registry
	dop   int // max degree of parallelism for eligible scans
}

func newServer(lines int, estimator string, threshold float64, sampleSize int, seed uint64, parallelism int) (*server, error) {
	db, err := tpch.Generate(tpch.Config{Lines: lines, Seed: seed})
	if err != nil {
		return nil, err
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		return nil, err
	}
	est, err := buildEstimator(db, estimator, threshold, sampleSize, seed)
	if err != nil {
		return nil, err
	}
	s := &server{ctx: ctx, est: est, reg: obs.NewRegistry(), dop: parallelism}
	// Engine-side metering (hash-join builds, pre-size hits, modeled
	// rehashes) lands in the same registry /metrics serves.
	ctx.Metrics = s.reg
	if b, ok := est.(*core.BayesEstimator); ok {
		s.bayes = b
	}
	return s, nil
}

// mux wires the debug endpoints. pprof handlers are registered
// explicitly because the server does not use http.DefaultServeMux.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprintf(w, `robustqo debug server (estimator: %s)

endpoints:
  /metrics                          text metrics exposition
  /query?sql=SELECT+...             optimize and execute SQL
         &threshold=0.95            per-query confidence threshold
         &analyze=1                 include the EXPLAIN ANALYZE tree
  /debug/pprof/                     Go runtime profiles
`, s.est.Name())
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.reg.WriteText(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sqlText := r.URL.Query().Get("sql")
	if sqlText == "" {
		http.Error(w, "missing sql parameter", http.StatusBadRequest)
		return
	}
	q, err := sqlparse.Parse(sqlText)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	est := s.est
	if raw := r.URL.Query().Get("threshold"); raw != "" {
		if s.bayes == nil {
			http.Error(w, "threshold only applies to the robust estimator", http.StatusBadRequest)
			return
		}
		t, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			http.Error(w, "bad threshold: "+err.Error(), http.StatusBadRequest)
			return
		}
		b, err := s.bayes.WithThreshold(core.ConfidenceThreshold(t))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		est = b
	}
	opt, err := optimizer.New(s.ctx, est)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	opt.MaxDOP = s.dop
	opt.Metrics = s.reg
	plan, err := opt.Optimize(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	inst := engine.InstrumentTrace(plan.Root, nil)
	var counters cost.Counters
	res, err := inst.Execute(s.ctx, &counters)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	counters.Output += int64(len(res.Rows))
	recordQueryMetrics(s.reg, plan, inst)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "estimator: %s\nestimated cost: %.4f s, estimated rows: %.1f\n",
		plan.Estimator, plan.EstCost, plan.EstRows)
	if r.URL.Query().Get("analyze") != "" {
		fmt.Fprint(w, "EXPLAIN ANALYZE:\n")
		fmt.Fprint(w, engine.ExplainAnalyze(inst, engine.AnalyzeOptions{
			EstimateOf: plan.EstimateOf,
			Timings:    true,
			Totals:     &counters,
		}))
	} else {
		fmt.Fprintf(w, "plan:\n%s", plan.Explain())
	}
	fmt.Fprintf(w, "simulated execution: %.4f s\n(%d rows)\n",
		s.ctx.Model.Time(counters), len(res.Rows))
}

func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("debug-addr", "localhost:6060", "listen address for the debug server")
	lines := fs.Int("lines", 60000, "lineitem rows to generate")
	threshold := fs.Float64("threshold", 0.8, "default confidence threshold in (0,1)")
	estimator := fs.String("estimator", "robust", "cardinality estimator: robust or histogram")
	sampleSize := fs.Int("samplesize", sample.DefaultSize, "synopsis tuples")
	seed := fs.Uint64("seed", 2005, "random seed")
	dop := fs.Int("parallelism", 1, "max degree of parallelism for eligible scans (1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}
	fmt.Fprintf(out, "generating TPC-H-like data (%d lineitem rows)...\n", *lines)
	s, err := newServer(*lines, *estimator, *threshold, *sampleSize, *seed, *dop)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "debug server listening on http://%s/ (metrics, query, pprof)\n", *addr)
	return http.ListenAndServe(*addr, s.mux())
}
