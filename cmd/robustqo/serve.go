package main

// The serve subcommand runs a debug HTTP server over a generated
// database: /metrics exposes the text metrics registry, /query
// optimizes and executes ad-hoc SQL (with per-request confidence
// thresholds — the paper's robustness knob as a URL parameter),
// /debug/queries shows in-flight queries with posterior-based progress
// estimates plus the recent slow-query captures, /debug/ledger serves
// the cardinality feedback ledger, and the standard net/http/pprof
// endpoints hang off /debug/pprof/.

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"time"

	"robustqo/internal/core"
	"robustqo/internal/cost"
	"robustqo/internal/engine"
	"robustqo/internal/obs"
	"robustqo/internal/obs/ledger"
	"robustqo/internal/optimizer"
	"robustqo/internal/sample"
	"robustqo/internal/sqlparse"
	"robustqo/internal/tpch"
)

// server holds the shared state behind the debug endpoints. The
// database, indexes, and estimator are immutable after startup; the
// registry, ledger, live registry, and logs are internally synchronized
// — so handlers need no lock.
type server struct {
	ctx   *engine.Context
	est   core.Estimator
	bayes *core.BayesEstimator // non-nil when est is the robust estimator
	reg   *obs.Registry
	dop   int // max degree of parallelism for eligible scans

	led    *ledger.Ledger
	active *obs.ActiveQueries
	events *obs.EventLog // nil unless -events names a file
	slow   *obs.SlowLog
	slowMS int
}

func newServer(lines int, estimator string, threshold float64, sampleSize int, seed uint64, parallelism int) (*server, error) {
	db, err := tpch.Generate(tpch.Config{Lines: lines, Seed: seed})
	if err != nil {
		return nil, err
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		return nil, err
	}
	est, err := buildEstimator(db, estimator, threshold, sampleSize, seed)
	if err != nil {
		return nil, err
	}
	s := &server{
		ctx: ctx, est: est, reg: obs.NewRegistry(), dop: parallelism,
		led:    ledger.New(0),
		active: obs.NewActiveQueries(),
		slow:   obs.NewSlowLog(0, nil),
		slowMS: 100,
	}
	// Engine-side metering (hash-join builds, pre-size hits, modeled
	// rehashes) lands in the same registry /metrics serves — including
	// the exchange utilization series — as do the ledger's own counters.
	ctx.Metrics = s.reg
	s.led.Metrics = s.reg
	if b, ok := est.(*core.BayesEstimator); ok {
		s.bayes = b
	}
	return s, nil
}

// mux wires the debug endpoints. pprof handlers are registered
// explicitly because the server does not use http.DefaultServeMux.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/debug/queries", s.handleQueries)
	mux.HandleFunc("/debug/ledger", s.handleLedger)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprintf(w, `robustqo debug server (estimator: %s)

endpoints:
  /metrics                          text metrics exposition
  /query?sql=SELECT+...             optimize and execute SQL
         &threshold=0.95            per-query confidence threshold
         &analyze=1                 include the EXPLAIN ANALYZE tree
  /debug/queries                    in-flight queries with progress
                                    estimates + recent slow queries
  /debug/ledger?n=10                cardinality feedback: worst Q-error
                                    fingerprints and per-table drift
  /debug/pprof/                     Go runtime profiles
`, s.est.Name())
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.reg.WriteText(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sqlText := r.URL.Query().Get("sql")
	if sqlText == "" {
		http.Error(w, "missing sql parameter", http.StatusBadRequest)
		return
	}
	live := s.active.Begin(sqlText)
	defer s.active.Done(live)
	start := time.Now()
	s.events.Emit(obs.Event{QueryID: live.ID, Event: "received", SQL: sqlText})
	fail := func(status int, err error) {
		live.SetPhase(obs.PhaseFailed)
		s.events.Emit(obs.Event{QueryID: live.ID, Event: "failed", Detail: err.Error()})
		http.Error(w, err.Error(), status)
	}
	live.SetPhase(obs.PhaseParse)
	q, err := sqlparse.Parse(sqlText)
	if err != nil {
		fail(http.StatusBadRequest, err)
		return
	}
	est := s.est
	if raw := r.URL.Query().Get("threshold"); raw != "" {
		if s.bayes == nil {
			fail(http.StatusBadRequest, fmt.Errorf("threshold only applies to the robust estimator"))
			return
		}
		t, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			fail(http.StatusBadRequest, fmt.Errorf("bad threshold: %v", err))
			return
		}
		b, err := s.bayes.WithThreshold(core.ConfidenceThreshold(t))
		if err != nil {
			fail(http.StatusBadRequest, err)
			return
		}
		est = b
	}
	live.SetPhase(obs.PhaseOptimize)
	opt, err := optimizer.New(s.ctx, est)
	if err != nil {
		fail(http.StatusInternalServerError, err)
		return
	}
	opt.MaxDOP = s.dop
	opt.Metrics = s.reg
	plan, err := opt.Optimize(q)
	if err != nil {
		fail(http.StatusBadRequest, err)
		return
	}
	inst := engine.InstrumentOpts(plan.Root, engine.InstrumentOptions{
		EstimateOf: plan.EstimateOf,
		Ledger:     s.led,
		QueryID:    live.ID,
		Live:       live,
	})
	live.T = plan.Confidence()
	live.DOP = s.dop
	live.EstRows = plan.EstRows
	live.PartsPruned, live.PartsTotal = planPruning(inst, plan.EstimateOf)
	s.events.Emit(obs.Event{QueryID: live.ID, Event: "optimized", T: live.T, DOP: s.dop,
		EstRows: plan.EstRows, PartsPruned: live.PartsPruned, PartsTotal: live.PartsTotal,
		ElapsedUS: time.Since(start).Microseconds()})
	live.SetPhase(obs.PhaseExecute)
	var counters cost.Counters
	res, err := inst.Execute(s.ctx, &counters)
	if err != nil {
		fail(http.StatusInternalServerError, err)
		return
	}
	counters.Output += int64(len(res.Rows))
	live.SetPhase(obs.PhaseDone)
	elapsed := time.Since(start)
	s.reg.Histogram("robustqo_query_latency_seconds", obs.LatencyBuckets).Observe(elapsed.Seconds())
	s.events.Emit(obs.Event{QueryID: live.ID, Event: "done",
		Rows: int64(len(res.Rows)), ElapsedUS: elapsed.Microseconds()})
	if elapsed >= time.Duration(s.slowMS)*time.Millisecond {
		s.slow.Record(obs.SlowQuery{
			QueryID: live.ID, SQL: sqlText, ElapsedUS: elapsed.Microseconds(),
			Analyze: engine.ExplainAnalyze(inst, engine.AnalyzeOptions{
				EstimateOf: plan.EstimateOf,
				Timings:    true,
				Totals:     &counters,
			}),
		})
	}
	recordQueryMetrics(s.reg, plan, inst)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "estimator: %s\nestimated cost: %.4f s, estimated rows: %.1f\n",
		plan.Estimator, plan.EstCost, plan.EstRows)
	if r.URL.Query().Get("analyze") != "" {
		fmt.Fprint(w, "EXPLAIN ANALYZE:\n")
		fmt.Fprint(w, engine.ExplainAnalyze(inst, engine.AnalyzeOptions{
			EstimateOf: plan.EstimateOf,
			Timings:    true,
			Totals:     &counters,
		}))
	} else {
		fmt.Fprintf(w, "plan:\n%s", plan.Explain())
	}
	fmt.Fprintf(w, "simulated execution: %.4f s\n(%d rows)\n",
		s.ctx.Model.Time(counters), len(res.Rows))
}

// handleQueries renders the in-flight queries with posterior-based
// progress estimates, followed by the recent slow-query captures.
func (s *server) handleQueries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	views := s.active.Snapshot()
	fmt.Fprintf(w, "%d in-flight queries\n\n", len(views))
	if len(views) > 0 {
		fmt.Fprintf(w, "%-6s %-9s %-5s %-4s %12s %12s %9s %10s  %s\n",
			"qid", "phase", "T", "dop", "est rows", "rows", "progress", "pruned", "sql")
		for _, v := range views {
			pruned := ""
			if v.PartsTotal > 0 {
				pruned = fmt.Sprintf("%d/%d", v.PartsPruned, v.PartsTotal)
			}
			fmt.Fprintf(w, "%-6s %-9s %-5g %-4d %12.1f %12d %8.1f%% %10s  %s\n",
				v.ID, v.Phase, v.T, v.DOP, v.EstRows, v.Rows, v.Progress*100, pruned, v.SQL)
		}
	}
	slow := s.slow.Recent()
	fmt.Fprintf(w, "\n%d recent slow queries (threshold %dms)\n", len(slow), s.slowMS)
	for i := len(slow) - 1; i >= 0; i-- {
		q := slow[i]
		fmt.Fprintf(w, "\n[%s] %.1fms  %s\n%s", q.QueryID, float64(q.ElapsedUS)/1000, q.SQL, q.Analyze)
	}
}

// handleLedger renders the cardinality feedback ledger: the worst
// Q-error fingerprints (?n= bounds the list) and per-table drift.
func (s *server) handleLedger(w http.ResponseWriter, r *http.Request) {
	n := 10
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil {
			http.Error(w, "bad n: "+err.Error(), http.StatusBadRequest)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%d fingerprints, %d observations, %d dropped\n\nworst fingerprints by Q-error:\n",
		s.led.Len(), s.led.Ordinal(), s.led.Dropped())
	renderTop(w, s.led.TopQError(n))
	fmt.Fprintf(w, "\nper-table drift:\n")
	renderDrift(w, s.led.Drift())
}

func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("debug-addr", "localhost:6060", "listen address for the debug server")
	lines := fs.Int("lines", 60000, "lineitem rows to generate")
	threshold := fs.Float64("threshold", 0.8, "default confidence threshold in (0,1)")
	estimator := fs.String("estimator", "robust", "cardinality estimator: robust or histogram")
	sampleSize := fs.Int("samplesize", sample.DefaultSize, "synopsis tuples")
	seed := fs.Uint64("seed", 2005, "random seed")
	dop := fs.Int("parallelism", 1, "max degree of parallelism for eligible scans (1 = serial)")
	slowMS := fs.Int("slow-query-ms", 100, "slow-query latency threshold in milliseconds")
	slowLogFile := fs.String("slow-log", "", "mirror slow-query captures as JSON lines to this file")
	eventsFile := fs.String("events", "", "append query-lifecycle JSON lines to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}
	fmt.Fprintf(out, "generating TPC-H-like data (%d lineitem rows)...\n", *lines)
	s, err := newServer(*lines, *estimator, *threshold, *sampleSize, *seed, *dop)
	if err != nil {
		return err
	}
	s.slowMS = *slowMS
	if *slowLogFile != "" {
		fh, err := os.Create(*slowLogFile)
		if err != nil {
			return err
		}
		defer fh.Close()
		s.slow = obs.NewSlowLog(0, fh)
	}
	if *eventsFile != "" {
		fh, err := os.Create(*eventsFile)
		if err != nil {
			return err
		}
		defer fh.Close()
		s.events = obs.NewEventLog(fh)
		s.events.Now = time.Now
	}
	fmt.Fprintf(out, "debug server listening on http://%s/ (metrics, query, debug/queries, debug/ledger, pprof)\n", *addr)
	return http.ListenAndServe(*addr, s.mux())
}
