package main

// The serve subcommand runs a debug HTTP server over a generated
// database: /metrics exposes the text metrics registry, /query
// optimizes and executes ad-hoc SQL (with per-request confidence
// thresholds — the paper's robustness knob as a URL parameter),
// /prepare + /exec provide prepared statements over the plan cache,
// /debug/queries shows in-flight queries with posterior-based progress
// estimates plus plan-cache/admission state and the recent slow-query
// captures, /debug/ledger serves the cardinality feedback ledger, and
// the standard net/http/pprof endpoints hang off /debug/pprof/.
//
// The serve path is built for sustained concurrent load: optimized
// plans are memoized in a sharded plan cache keyed by query template
// (prepared statements re-bind parameters under the credible-interval
// rule instead of re-optimizing), and an admission gate bounds
// concurrent execution with a bounded queue, shedding overload with
// 429 + Retry-After instead of collapsing. SIGINT/SIGTERM drains
// in-flight queries and flushes the ledger/event log before exit.

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"robustqo/internal/catalog"
	"robustqo/internal/core"
	"robustqo/internal/cost"
	"robustqo/internal/engine"
	"robustqo/internal/obs"
	"robustqo/internal/obs/ledger"
	"robustqo/internal/optimizer"
	"robustqo/internal/plancache"
	"robustqo/internal/sample"
	"robustqo/internal/sqlparse"
	"robustqo/internal/tpch"
	"robustqo/internal/value"
)

// defaultMaxBody bounds /query and /exec request bodies.
const defaultMaxBody = 1 << 20 // 1 MiB

// server holds the shared state behind the debug endpoints. The
// database, indexes, and estimator are immutable after startup; the
// registry, ledger, live registry, plan cache, admission gate, and logs
// are internally synchronized — so handlers need no lock.
type server struct {
	ctx   *engine.Context
	est   core.Estimator
	bayes *core.BayesEstimator // non-nil when est is the robust estimator
	reg   *obs.Registry
	dop   int // max degree of parallelism for eligible scans

	cache *plancache.Cache
	adm   *plancache.Admission
	stmts *stmtRegistry

	// reqTimeout cancels in-flight execution via context; 0 disables.
	reqTimeout time.Duration
	maxBody    int64

	led    *ledger.Ledger
	active *obs.ActiveQueries
	events *obs.EventLog // nil unless -events names a file
	slow   *obs.SlowLog
	slowMS int
}

func newServer(lines int, estimator string, threshold float64, sampleSize int, seed uint64, parallelism int) (*server, error) {
	db, err := tpch.Generate(tpch.Config{Lines: lines, Seed: seed})
	if err != nil {
		return nil, err
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		return nil, err
	}
	est, err := buildEstimator(db, estimator, threshold, sampleSize, seed)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	s := &server{
		ctx: ctx, est: est, reg: reg, dop: parallelism,
		cache:      plancache.New(1024, reg),
		adm:        plancache.NewAdmission(plancache.AdmissionConfig{}, defaultAdmissionSlots(), reg),
		stmts:      newStmtRegistry(),
		reqTimeout: 30 * time.Second,
		maxBody:    defaultMaxBody,
		led:        ledger.New(0),
		active:     obs.NewActiveQueries(),
		slow:       obs.NewSlowLog(0, nil),
		slowMS:     100,
	}
	// Engine-side metering (hash-join builds, pre-size hits, modeled
	// rehashes) lands in the same registry /metrics serves — including
	// the exchange utilization series — as do the ledger's own counters.
	ctx.Metrics = s.reg
	s.led.Metrics = s.reg
	if b, ok := est.(*core.BayesEstimator); ok {
		s.bayes = b
	}
	return s, nil
}

// defaultAdmissionSlots sizes the token pool: twice the CPUs, floor 4,
// so serial deployments still overlap I/O-free queries while large
// machines admit proportionally more.
func defaultAdmissionSlots() int {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	return n
}

// stmtRegistry holds server-side prepared statements.
type stmtRegistry struct {
	mu   sync.Mutex
	m    map[string]*stmt
	next int
}

type stmt struct {
	ID  string
	SQL string
	Tpl *plancache.Template
}

func newStmtRegistry() *stmtRegistry {
	return &stmtRegistry{m: make(map[string]*stmt)}
}

func (r *stmtRegistry) add(sqlText string, tpl *plancache.Template) *stmt {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	st := &stmt{ID: "s" + strconv.Itoa(r.next), SQL: sqlText, Tpl: tpl}
	r.m[st.ID] = st
	return st
}

func (r *stmtRegistry) get(id string) (*stmt, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.m[id]
	return st, ok
}

func (r *stmtRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

// mux wires the debug endpoints. pprof handlers are registered
// explicitly because the server does not use http.DefaultServeMux.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/prepare", s.handlePrepare)
	mux.HandleFunc("/exec", s.handleExec)
	mux.HandleFunc("/debug/queries", s.handleQueries)
	mux.HandleFunc("/debug/ledger", s.handleLedger)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprintf(w, `robustqo debug server (estimator: %s)

endpoints:
  /metrics                          text metrics exposition
  /query?sql=SELECT+...             optimize and execute SQL
         &threshold=0.95            per-query confidence threshold
         &analyze=1                 include the EXPLAIN ANALYZE tree
  /prepare?sql=SELECT+...           normalize to a prepared statement
  /exec?stmt=s1&args=v1,v2          bind + execute a prepared statement
  /debug/queries                    in-flight queries with progress
                                    estimates, plan cache + admission
                                    state, recent slow queries
  /debug/ledger?n=10                cardinality feedback: worst Q-error
                                    fingerprints and per-table drift
  /debug/pprof/                     Go runtime profiles
`, s.est.Name())
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.reg.WriteText(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// jsonError is the structured error body every failure path returns.
type jsonError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// writeError emits a structured JSON error. retryAfter > 0 adds the
// Retry-After header (whole seconds, minimum 1).
func writeError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		secs := int(retryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	var body jsonError
	body.Error.Code = code
	body.Error.Message = msg
	_ = json.NewEncoder(w).Encode(&body)
}

// estimatorFor resolves the per-request estimator: the server default,
// or a re-thresholded robust estimator when ?threshold= is present.
func (s *server) estimatorFor(r *http.Request) (core.Estimator, error) {
	raw := r.FormValue("threshold")
	if raw == "" {
		return s.est, nil
	}
	if s.bayes == nil {
		return nil, fmt.Errorf("threshold only applies to the robust estimator")
	}
	t, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return nil, fmt.Errorf("bad threshold: %v", err)
	}
	return s.bayes.WithThreshold(core.ConfidenceThreshold(t))
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	sqlText := r.FormValue("sql")
	if sqlText == "" {
		writeError(w, http.StatusBadRequest, "missing_sql", "missing sql parameter", 0)
		return
	}
	q, err := sqlparse.Parse(sqlText)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse_error", err.Error(), 0)
		return
	}
	est, err := s.estimatorFor(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_threshold", err.Error(), 0)
		return
	}
	s.execute(w, r, sqlText, q, est)
}

// handlePrepare normalizes a query into a server-side prepared
// statement and returns its id and parameter count as JSON.
func (s *server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	sqlText := r.FormValue("sql")
	if sqlText == "" {
		writeError(w, http.StatusBadRequest, "missing_sql", "missing sql parameter", 0)
		return
	}
	q, err := sqlparse.Parse(sqlText)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse_error", err.Error(), 0)
		return
	}
	tpl := plancache.Normalize(q)
	st := s.stmts.add(sqlText, tpl)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"stmt":   st.ID,
		"params": len(tpl.Params),
	})
}

// handleExec binds a prepared statement to new parameter values and
// executes it through the plan cache: ?stmt=s1&args=100,300 (args in
// slot order; dates as day numbers or YYYY-MM-DD).
func (s *server) handleExec(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	st, ok := s.stmts.get(r.FormValue("stmt"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_stmt", "unknown prepared statement id", 0)
		return
	}
	params, err := parseArgs(r.FormValue("args"), st.Tpl)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_args", err.Error(), 0)
		return
	}
	q, err := st.Tpl.Bind(params)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_args", err.Error(), 0)
		return
	}
	est, err := s.estimatorFor(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_threshold", err.Error(), 0)
		return
	}
	s.execute(w, r, st.SQL+" /* exec "+r.FormValue("args")+" */", q, est)
}

// parseArgs parses a comma-separated binding list against the
// template's slot kinds.
func parseArgs(raw string, tpl *plancache.Template) ([]value.Value, error) {
	if len(tpl.Kinds) == 0 {
		if strings.TrimSpace(raw) != "" {
			return nil, fmt.Errorf("statement takes no parameters")
		}
		return nil, nil
	}
	parts := strings.Split(raw, ",")
	if len(parts) != len(tpl.Kinds) {
		return nil, fmt.Errorf("statement takes %d parameters, got %d", len(tpl.Kinds), len(parts))
	}
	out := make([]value.Value, len(parts))
	for i, p := range parts {
		v, err := parseArg(strings.TrimSpace(p), tpl.Kinds[i])
		if err != nil {
			return nil, fmt.Errorf("parameter %d: %v", i, err)
		}
		out[i] = v
	}
	return out, nil
}

func parseArg(p string, k catalog.Type) (value.Value, error) {
	switch k {
	case catalog.Int:
		n, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return value.Value{}, err
		}
		return value.Int(n), nil
	case catalog.Date:
		if n, err := strconv.ParseInt(p, 10, 64); err == nil {
			return value.Date(n), nil
		}
		days, err := value.ParseDate(p)
		if err != nil {
			return value.Value{}, err
		}
		return value.Date(days), nil
	case catalog.Float:
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return value.Value{}, err
		}
		return value.Float(f), nil
	case catalog.String:
		return value.Str(p), nil
	default:
		return value.Value{}, fmt.Errorf("unsupported parameter kind")
	}
}

// execute is the shared serve pipeline: admission → plan cache →
// instrument → guarded execution → metrics/logs → response.
func (s *server) execute(w http.ResponseWriter, r *http.Request, sqlText string, q *optimizer.Query, est core.Estimator) {
	// Admission first: overload is decided before any per-query work.
	release, err := s.adm.Admit(r.Context())
	if err != nil {
		switch {
		case errors.Is(err, plancache.ErrShed), errors.Is(err, plancache.ErrTimeout):
			writeError(w, http.StatusTooManyRequests, "overloaded", err.Error(), s.adm.RetryAfter())
		case errors.Is(err, plancache.ErrClosed):
			writeError(w, http.StatusServiceUnavailable, "shutting_down", err.Error(), s.adm.RetryAfter())
		default: // client went away while queued
			writeError(w, http.StatusServiceUnavailable, "cancelled", err.Error(), 0)
		}
		return
	}
	defer release()

	rctx := r.Context()
	if s.reqTimeout > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(rctx, s.reqTimeout)
		defer cancel()
	}

	live := s.active.Begin(sqlText)
	defer s.active.Done(live)
	start := time.Now()
	s.events.Emit(obs.Event{QueryID: live.ID, Event: "received", SQL: sqlText})
	fail := func(status int, code string, err error) {
		live.SetPhase(obs.PhaseFailed)
		s.events.Emit(obs.Event{QueryID: live.ID, Event: "failed", Detail: err.Error()})
		writeError(w, status, code, err.Error(), 0)
	}

	dop := s.adm.ClampDOP(s.dop)
	live.SetPhase(obs.PhaseOptimize)
	env := plancache.Env{
		Ctx: s.ctx,
		Est: est,
		DOP: dop,
		Optimize: func(q *optimizer.Query) (*optimizer.Plan, error) {
			opt, err := optimizer.New(s.ctx, est)
			if err != nil {
				return nil, err
			}
			opt.MaxDOP = dop
			opt.Metrics = s.reg
			return opt.Optimize(q)
		},
	}
	plan, outcome, err := s.cache.Plan(env, q)
	if err != nil {
		fail(http.StatusBadRequest, "optimize_error", err)
		return
	}
	if err := s.adm.CheckMemory(plan.EstRows); err != nil {
		fail(http.StatusTooManyRequests, "mem_budget", err)
		return
	}
	inst := engine.InstrumentOpts(plan.Root, engine.InstrumentOptions{
		EstimateOf: plan.EstimateOf,
		Ledger:     s.led,
		QueryID:    live.ID,
		Live:       live,
	})
	live.T = plan.Confidence()
	live.DOP = dop
	live.EstRows = plan.EstRows
	live.PartsPruned, live.PartsTotal = planPruning(inst, plan.EstimateOf)
	s.events.Emit(obs.Event{QueryID: live.ID, Event: "optimized", T: live.T, DOP: dop,
		EstRows: plan.EstRows, PartsPruned: live.PartsPruned, PartsTotal: live.PartsTotal,
		ElapsedUS: time.Since(start).Microseconds()})
	live.SetPhase(obs.PhaseExecute)
	var counters cost.Counters
	// The cancel guard sits outside the instrumented root: aborting
	// still closes the instrumented tree, which flushes ledger feedback
	// for the work that did complete.
	res, err := engine.Guard(rctx, inst).Execute(s.ctx, &counters)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			fail(http.StatusGatewayTimeout, "query_timeout", err)
		case errors.Is(err, context.Canceled):
			fail(http.StatusServiceUnavailable, "cancelled", err)
		default:
			fail(http.StatusInternalServerError, "execute_error", err)
		}
		return
	}
	counters.Output += int64(len(res.Rows))
	live.SetPhase(obs.PhaseDone)
	elapsed := time.Since(start)
	s.reg.Histogram("robustqo_query_latency_seconds", obs.LatencyBuckets).Observe(elapsed.Seconds())
	s.events.Emit(obs.Event{QueryID: live.ID, Event: "done",
		Rows: int64(len(res.Rows)), ElapsedUS: elapsed.Microseconds()})
	if elapsed >= time.Duration(s.slowMS)*time.Millisecond {
		s.slow.Record(obs.SlowQuery{
			QueryID: live.ID, SQL: sqlText, ElapsedUS: elapsed.Microseconds(),
			Analyze: engine.ExplainAnalyze(inst, engine.AnalyzeOptions{
				EstimateOf: plan.EstimateOf,
				Timings:    true,
				Totals:     &counters,
			}),
		})
	}
	recordQueryMetrics(s.reg, plan, inst)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "estimator: %s\nestimated cost: %.4f s, estimated rows: %.1f\nplan cache: %s\n",
		plan.Estimator, plan.EstCost, plan.EstRows, outcome)
	if r.FormValue("analyze") != "" {
		fmt.Fprint(w, "EXPLAIN ANALYZE:\n")
		fmt.Fprint(w, engine.ExplainAnalyze(inst, engine.AnalyzeOptions{
			EstimateOf: plan.EstimateOf,
			Timings:    true,
			Totals:     &counters,
		}))
	} else {
		fmt.Fprintf(w, "plan:\n%s", plan.Explain())
	}
	fmt.Fprintf(w, "simulated execution: %.4f s\n(%d rows)\n",
		s.ctx.Model.Time(counters), len(res.Rows))
}

// handleQueries renders the in-flight queries with posterior-based
// progress estimates, the plan-cache and admission state, and the
// recent slow-query captures.
func (s *server) handleQueries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	views := s.active.Snapshot()
	fmt.Fprintf(w, "%d in-flight queries\n\n", len(views))
	if len(views) > 0 {
		fmt.Fprintf(w, "%-6s %-9s %-5s %-4s %12s %12s %9s %10s  %s\n",
			"qid", "phase", "T", "dop", "est rows", "rows", "progress", "pruned", "sql")
		for _, v := range views {
			pruned := ""
			if v.PartsTotal > 0 {
				pruned = fmt.Sprintf("%d/%d", v.PartsPruned, v.PartsTotal)
			}
			fmt.Fprintf(w, "%-6s %-9s %-5g %-4d %12.1f %12d %8.1f%% %10s  %s\n",
				v.ID, v.Phase, v.T, v.DOP, v.EstRows, v.Rows, v.Progress*100, pruned, v.SQL)
		}
	}

	fmt.Fprintf(w, "\nplan cache: %d entries, %d prepared statements\n",
		s.cache.Len(), s.stmts.len())
	fmt.Fprintf(w, "  hits=%d rebinds=%d misses=%d rejects=%d evictions=%d\n",
		s.reg.Counter("robustqo_plancache_hits_total").Value(),
		s.reg.Counter("robustqo_plancache_rebinds_total").Value(),
		s.reg.Counter("robustqo_plancache_misses_total").Value(),
		s.reg.Counter("robustqo_plancache_rejects_total").Value(),
		s.reg.Counter("robustqo_plancache_evictions_total").Value())
	cfg := s.adm.Config()
	fmt.Fprintf(w, "admission: %d/%d slots in use, %d queued (max %d)\n",
		s.adm.InFlight(), cfg.Slots, s.adm.Waiting(), cfg.MaxQueue)
	fmt.Fprintf(w, "  admitted=%d shed=%d timeouts=%d cancelled=%d mem_rejects=%d\n",
		s.reg.Counter("robustqo_admission_admitted_total").Value(),
		s.reg.Counter("robustqo_admission_shed_total").Value(),
		s.reg.Counter("robustqo_admission_timeouts_total").Value(),
		s.reg.Counter("robustqo_admission_cancelled_total").Value(),
		s.reg.Counter("robustqo_admission_mem_rejects_total").Value())

	slow := s.slow.Recent()
	fmt.Fprintf(w, "\n%d recent slow queries (threshold %dms)\n", len(slow), s.slowMS)
	for i := len(slow) - 1; i >= 0; i-- {
		q := slow[i]
		fmt.Fprintf(w, "\n[%s] %.1fms  %s\n%s", q.QueryID, float64(q.ElapsedUS)/1000, q.SQL, q.Analyze)
	}
}

// handleLedger renders the cardinality feedback ledger: the worst
// Q-error fingerprints (?n= bounds the list) and per-table drift.
func (s *server) handleLedger(w http.ResponseWriter, r *http.Request) {
	n := 10
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil {
			http.Error(w, "bad n: "+err.Error(), http.StatusBadRequest)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%d fingerprints, %d observations, %d dropped\n\nworst fingerprints by Q-error:\n",
		s.led.Len(), s.led.Ordinal(), s.led.Dropped())
	renderTop(w, s.led.TopQError(n))
	fmt.Fprintf(w, "\nper-table drift:\n")
	renderDrift(w, s.led.Drift())
}

func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("debug-addr", "localhost:6060", "listen address for the debug server")
	lines := fs.Int("lines", 60000, "lineitem rows to generate")
	threshold := fs.Float64("threshold", 0.8, "default confidence threshold in (0,1)")
	estimator := fs.String("estimator", "robust", "cardinality estimator: robust or histogram")
	sampleSize := fs.Int("samplesize", sample.DefaultSize, "synopsis tuples")
	seed := fs.Uint64("seed", 2005, "random seed")
	dop := fs.Int("parallelism", 1, "max degree of parallelism for eligible scans (1 = serial)")
	slowMS := fs.Int("slow-query-ms", 100, "slow-query latency threshold in milliseconds")
	slowLogFile := fs.String("slow-log", "", "mirror slow-query captures as JSON lines to this file")
	eventsFile := fs.String("events", "", "append query-lifecycle JSON lines to this file")
	queryTimeoutMS := fs.Int("query-timeout-ms", 30000, "per-request execution timeout in milliseconds (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain deadline")
	ledgerOut := fs.String("ledger-out", "", "persist the feedback ledger to this file on shutdown")
	admSlots := fs.Int("admission-slots", 0, "concurrent execution slots (0 = 2x CPUs, min 4)")
	admQueue := fs.Int("admission-queue", 0, "bounded admission queue length (0 = default 256)")
	admQueueTimeoutMS := fs.Int("admission-queue-timeout-ms", 0, "max queue wait in milliseconds (0 = default 10s)")
	maxQueryDOP := fs.Int("max-query-dop", 0, "per-query DOP budget (0 = no clamp)")
	memBudgetRows := fs.Float64("mem-budget-rows", 0, "per-query memory budget as estimated rows (0 = no budget)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}
	fmt.Fprintf(out, "generating TPC-H-like data (%d lineitem rows)...\n", *lines)
	s, err := newServer(*lines, *estimator, *threshold, *sampleSize, *seed, *dop)
	if err != nil {
		return err
	}
	s.slowMS = *slowMS
	s.reqTimeout = time.Duration(*queryTimeoutMS) * time.Millisecond
	s.adm = plancache.NewAdmission(plancache.AdmissionConfig{
		Slots:         *admSlots,
		MaxQueue:      *admQueue,
		QueueTimeout:  time.Duration(*admQueueTimeoutMS) * time.Millisecond,
		MaxQueryDOP:   *maxQueryDOP,
		MemBudgetRows: *memBudgetRows,
	}, defaultAdmissionSlots(), s.reg)
	if *slowLogFile != "" {
		fh, err := os.Create(*slowLogFile)
		if err != nil {
			return err
		}
		defer fh.Close()
		s.slow = obs.NewSlowLog(0, fh)
	}
	if *eventsFile != "" {
		fh, err := os.Create(*eventsFile)
		if err != nil {
			return err
		}
		defer fh.Close()
		s.events = obs.NewEventLog(fh)
		s.events.Now = time.Now
	}

	srv := &http.Server{Addr: *addr, Handler: s.mux()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(out, "debug server listening on http://%s/ (metrics, query, prepare/exec, debug/queries, debug/ledger, pprof)\n", *addr)

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err // listener failed before any signal
	case <-sigCtx.Done():
	}

	// Graceful shutdown: stop admitting, drain in-flight queries up to
	// the deadline, then flush the ledger. The event/slow-log files are
	// flushed by their deferred Close.
	fmt.Fprintf(out, "shutdown signal received; draining (deadline %s)...\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.adm.Close(drainCtx); err != nil {
		fmt.Fprintf(out, "drain incomplete: %v\n", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(out, "http shutdown: %v\n", err)
	}
	if *ledgerOut != "" {
		fh, err := os.Create(*ledgerOut)
		if err != nil {
			return fmt.Errorf("persist ledger: %w", err)
		}
		if err := s.led.Save(fh); err != nil {
			fh.Close()
			return fmt.Errorf("persist ledger: %w", err)
		}
		if err := fh.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "ledger persisted to %s (%d fingerprints)\n", *ledgerOut, s.led.Len())
	}
	fmt.Fprintln(out, "shutdown complete")
	return nil
}
