package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunNoArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no args accepted")
	}
	if !strings.Contains(buf.String(), "Subcommands") {
		t.Error("usage not printed")
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"bogus"}, &buf); err == nil {
		t.Error("unknown subcommand accepted")
	}
}

func TestRunHelp(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"help"}, &buf); err != nil {
		t.Errorf("help failed: %v", err)
	}
}

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig1", "fig9", "fig12", "ovh"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %s:\n%s", want, out)
		}
	}
}

func TestRunExperimentAnalytic(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"experiment", "fig5", "fig6"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig5") || !strings.Contains(out, "fig6") {
		t.Errorf("missing figures:\n%s", out)
	}
	if !strings.Contains(out, "T=95%") {
		t.Errorf("missing threshold series:\n%s", out)
	}
}

func TestRunExperimentCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"experiment", "-format", "csv", "fig1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig1,Plan 1,") {
		t.Errorf("csv output wrong:\n%s", buf.String())
	}
}

func TestRunExperimentErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"experiment"}, &buf); err == nil {
		t.Error("no ids accepted")
	}
	if err := run([]string{"experiment", "nope"}, &buf); err == nil {
		t.Error("unknown id accepted")
	}
	if err := run([]string{"experiment", "-format", "xml", "fig1"}, &buf); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunExperimentRealSystemSmall(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"experiment", "-lines", "10000", "-samples", "2", "fig9"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig9a") || !strings.Contains(out, "fig9b") {
		t.Errorf("missing panels:\n%s", out)
	}
	if !strings.Contains(out, "Histograms") {
		t.Error("missing histogram baseline")
	}
}

func TestRunQuery(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"query", "-lines", "5000",
		"l_shipdate BETWEEN DATE '1997-07-01' AND DATE '1997-09-30'"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"plan:", "simulated execution", "revenue"} {
		if !strings.Contains(out, want) {
			t.Errorf("query output missing %q:\n%s", want, out)
		}
	}
}

func TestRunQueryExplainAndHistogram(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"query", "-lines", "5000", "-estimator", "histogram", "-explain",
		"l_quantity < 10"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "simulated execution") {
		t.Error("-explain executed the query")
	}
	if !strings.Contains(buf.String(), "histograms") {
		t.Errorf("histogram estimator not used:\n%s", buf.String())
	}
}

func TestRunQueryErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"query"}, &buf); err == nil {
		t.Error("missing predicate accepted")
	}
	if err := run([]string{"query", "((bad"}, &buf); err == nil {
		t.Error("bad predicate accepted")
	}
	if err := run([]string{"query", "-estimator", "psychic", "l_quantity < 10"}, &buf); err == nil {
		t.Error("unknown estimator accepted")
	}
	if err := run([]string{"query", "-threshold", "2", "l_quantity < 10"}, &buf); err == nil {
		t.Error("bad threshold accepted")
	}
}

func TestRunSQL(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"sql", "-lines", "5000",
		"SELECT l_partkey, SUM(l_extendedprice) AS rev FROM lineitem " +
			"WHERE l_quantity < 10 GROUP BY l_partkey ORDER BY l_partkey LIMIT 5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"plan:", "Aggregate", "Limit(5)", "rev", "(5 rows)"} {
		if !strings.Contains(out, want) {
			t.Errorf("sql output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSQLJoin(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"sql", "-lines", "5000", "-maxrows", "3",
		"SELECT COUNT(*) FROM lineitem, orders, part WHERE p_attr1 < 20"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Join") {
		t.Errorf("join output:\n%s", buf.String())
	}
}

func TestRunSQLErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"sql"}, &buf); err == nil {
		t.Error("missing statement accepted")
	}
	if err := run([]string{"sql", "DELETE FROM lineitem"}, &buf); err == nil {
		t.Error("non-SELECT accepted")
	}
	if err := run([]string{"sql", "-estimator", "tea-leaves", "SELECT * FROM lineitem"}, &buf); err == nil {
		t.Error("unknown estimator accepted")
	}
	if err := run([]string{"sql", "-lines", "5000", "SELECT * FROM ghost"}, &buf); err == nil {
		t.Error("unknown table accepted")
	}
}
