// Command robustqo drives the reproduction: it regenerates any figure of
// the paper, lists the available experiments, and runs ad-hoc queries
// against a generated TPC-H-like database under either estimator.
//
// Usage:
//
//	robustqo list
//	robustqo experiment all | fig5 fig9 ... [flags]
//	robustqo query [flags] '<predicate over lineitem>'
//
// Run `robustqo <subcommand> -h` for per-subcommand flags.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"robustqo/internal/colstore"
	"robustqo/internal/engine"
	"robustqo/internal/experiments"
	"robustqo/internal/expr"
	"robustqo/internal/obs"
	"robustqo/internal/optimizer"
	"robustqo/internal/sample"
	"robustqo/internal/sqlparse"
	"robustqo/internal/tpch"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "robustqo:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		usage(out)
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "list":
		return runList(out)
	case "experiment":
		return runExperiment(args[1:], out)
	case "query":
		return runQuery(args[1:], out)
	case "sql":
		return runSQL(args[1:], out)
	case "serve":
		return runServe(args[1:], out)
	case "ledger":
		return runLedger(args[1:], out)
	case "help", "-h", "--help":
		usage(out)
		return nil
	default:
		usage(out)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(out io.Writer) {
	fmt.Fprint(out, `robustqo — robust query optimizer reproduction (SIGMOD 2005)

Subcommands:
  list                      list experiment ids (figures of the paper)
  experiment <ids...|all>   regenerate figures; -h for scaling flags
  query '<predicate>'       optimize+run a lineitem aggregate; -h for flags
  sql 'SELECT ...'          optimize+run a full SELECT over the TPC-H-like
                            schema (lineitem, orders, part); -h for flags
  serve                     debug HTTP server: /metrics, /query, pprof,
                            /debug/queries (in-flight progress + slow log),
                            /debug/ledger (cardinality feedback);
                            -debug-addr to pick the listen address
  ledger run|top|drift      run the feedback corpus and persist the
                            cardinality ledger; inspect a persisted ledger

query and sql accept -analyze (EXPLAIN ANALYZE: estimated vs actual rows
and Q-error per operator), -trace-out FILE [-trace-format json|chrome]
to export an optimizer+execution trace, and -partitions N to
range-partition lineitem on l_shipdate (pruned scans show up in the plan
and in EXPLAIN ANALYZE as "partitions: k/n"). sql also accepts -columnar
to build compressed columnar encodings (encoded scans, zone-map segment
skipping, late materialization; EXPLAIN ANALYZE shows "segments: k/n
skipped") and -cluster to lay lineitem out in ship-date order so the
date zone maps are selective.
`)
}

func runList(out io.Writer) error {
	for _, id := range experiments.IDs() {
		fmt.Fprintln(out, id)
	}
	return nil
}

func runExperiment(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	fs.SetOutput(out)
	def := experiments.DefaultSystemConfig()
	lines := fs.Int("lines", def.Lines, "lineitem rows for Experiments 1-2")
	parts := fs.Int("parts", def.Parts, "part rows for Experiment 2")
	fact := fs.Int("fact", def.FactRows, "fact rows for Experiment 3")
	dims := fs.Int("dimrows", def.DimRows, "dimension rows for Experiment 3")
	sampleSize := fs.Int("samplesize", def.SampleSize, "synopsis tuples")
	samples := fs.Int("samples", def.Samples, "independent sample sets to average over")
	seed := fs.Uint64("seed", def.Seed, "base random seed")
	format := fs.String("format", "text", "output format: text or csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ids := fs.Args()
	if len(ids) == 0 {
		return fmt.Errorf("experiment: name at least one figure id or 'all'")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	cfg := def
	cfg.Lines = *lines
	cfg.Parts = *parts
	cfg.FactRows = *fact
	cfg.DimRows = *dims
	cfg.SampleSize = *sampleSize
	cfg.Samples = *samples
	cfg.Seed = *seed
	for _, id := range ids {
		figs, err := experiments.Run(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %v", id, err)
		}
		for _, f := range figs {
			switch *format {
			case "text":
				if err := f.Render(out); err != nil {
					return err
				}
			case "csv":
				if err := f.CSV(out); err != nil {
					return err
				}
			default:
				return fmt.Errorf("unknown format %q", *format)
			}
		}
	}
	return nil
}

func runQuery(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	fs.SetOutput(out)
	lines := fs.Int("lines", 60000, "lineitem rows to generate")
	threshold := fs.Float64("threshold", 0.8, "confidence threshold in (0,1)")
	estimator := fs.String("estimator", "robust", "cardinality estimator: robust or histogram")
	sampleSize := fs.Int("samplesize", sample.DefaultSize, "synopsis tuples")
	seed := fs.Uint64("seed", 2005, "random seed")
	explainOnly := fs.Bool("explain", false, "print the plan without executing")
	dop := fs.Int("parallelism", 1, "max degree of parallelism for eligible scans (1 = serial)")
	partitions := fs.Int("partitions", 1, "range-partition lineitem on l_shipdate into this many shards (1 = unpartitioned)")
	var of obsFlags
	of.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("query: provide exactly one predicate string (got %d args)", fs.NArg())
	}
	pred, err := expr.Parse(fs.Arg(0))
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "generating TPC-H-like data (%d lineitem rows)...\n", *lines)
	db, err := tpch.Generate(tpch.Config{Lines: *lines, Partitions: *partitions, Seed: *seed})
	if err != nil {
		return err
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		return err
	}
	ctx.Metrics = obs.Default
	est, err := buildEstimator(db, *estimator, *threshold, *sampleSize, *seed)
	if err != nil {
		return err
	}
	opt, err := optimizer.New(ctx, est)
	if err != nil {
		return err
	}
	tr := of.trace()
	opt.Trace = tr
	opt.MaxDOP = *dop
	opt.Metrics = obs.Default
	q := &optimizer.Query{
		Tables: []string{"lineitem"},
		Pred:   pred,
		Aggs: []engine.AggSpec{
			{Func: engine.Count, As: "n"},
			{Func: engine.Sum, Arg: expr.TC("lineitem", "l_extendedprice"), As: "revenue"},
		},
	}
	plan, err := opt.Optimize(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "estimator: %s\nestimated cost: %.4f s, estimated rows: %.1f\nplan:\n%s",
		plan.Estimator, plan.EstCost, plan.EstRows, plan.Explain())
	if *explainOnly {
		return nil
	}
	res, err := executePlan(ctx, plan, tr, &of, out)
	if err != nil {
		return err
	}
	header := make([]string, len(res.Schema.Fields))
	for i, f := range res.Schema.Fields {
		header[i] = f.Column
	}
	fmt.Fprintln(out, strings.Join(header, "\t"))
	for _, r := range res.Rows {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = v.String()
		}
		fmt.Fprintln(out, strings.Join(cells, "\t"))
	}
	return nil
}

func runSQL(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sql", flag.ContinueOnError)
	fs.SetOutput(out)
	lines := fs.Int("lines", 60000, "lineitem rows to generate")
	threshold := fs.Float64("threshold", 0.8, "confidence threshold in (0,1)")
	estimator := fs.String("estimator", "robust", "cardinality estimator: robust or histogram")
	sampleSize := fs.Int("samplesize", sample.DefaultSize, "synopsis tuples")
	seed := fs.Uint64("seed", 2005, "random seed")
	explainOnly := fs.Bool("explain", false, "print the plan without executing")
	dop := fs.Int("parallelism", 1, "max degree of parallelism for eligible scans (1 = serial)")
	partitions := fs.Int("partitions", 1, "range-partition lineitem on l_shipdate into this many shards (1 = unpartitioned)")
	columnar := fs.Bool("columnar", false, "build compressed columnar encodings; scans decode them and zone maps skip segments")
	cluster := fs.Bool("cluster", false, "lay lineitem out in l_shipdate order so date zone maps are selective")
	maxRows := fs.Int("maxrows", 20, "print at most this many result rows")
	var of obsFlags
	of.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("sql: provide exactly one SELECT statement (got %d args)", fs.NArg())
	}
	q, err := sqlparse.Parse(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "generating TPC-H-like data (%d lineitem rows)...\n", *lines)
	db, err := tpch.Generate(tpch.Config{Lines: *lines, Partitions: *partitions, Seed: *seed, ClusterDates: *cluster})
	if err != nil {
		return err
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		return err
	}
	ctx.Metrics = obs.Default
	if *columnar {
		encs, err := colstore.BuildAll(db)
		if err != nil {
			return err
		}
		ctx.Encodings = encs
		fmt.Fprintf(out, "columnar encodings: %d bytes raw -> %d bytes encoded (%.1fx)\n",
			encs.RawBytes(), encs.EncodedBytes(), float64(encs.RawBytes())/float64(encs.EncodedBytes()))
	}
	est, err := buildEstimator(db, *estimator, *threshold, *sampleSize, *seed)
	if err != nil {
		return err
	}
	opt, err := optimizer.New(ctx, est)
	if err != nil {
		return err
	}
	tr := of.trace()
	opt.Trace = tr
	opt.MaxDOP = *dop
	opt.Metrics = obs.Default
	plan, err := opt.Optimize(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "estimator: %s\nestimated cost: %.4f s, estimated rows: %.1f\nplan:\n%s",
		plan.Estimator, plan.EstCost, plan.EstRows, plan.Explain())
	if *explainOnly {
		return nil
	}
	res, err := executePlan(ctx, plan, tr, &of, out)
	if err != nil {
		return err
	}
	header := make([]string, len(res.Schema.Fields))
	for i, f := range res.Schema.Fields {
		if f.Table != "" {
			header[i] = f.Table + "." + f.Column
		} else {
			header[i] = f.Column
		}
	}
	fmt.Fprintln(out, strings.Join(header, "\t"))
	shown := 0
	for _, r := range res.Rows {
		if shown >= *maxRows {
			fmt.Fprintf(out, "... (%d more rows)\n", len(res.Rows)-shown)
			break
		}
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = v.String()
		}
		fmt.Fprintln(out, strings.Join(cells, "\t"))
		shown++
	}
	fmt.Fprintf(out, "(%d rows)\n", len(res.Rows))
	return nil
}
