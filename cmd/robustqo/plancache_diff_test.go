package main

// Differential tests for the serve-path plan cache: a plan served from
// the cache — whether a pure hit or a credible-interval re-bind — must
// compute byte-identical results (rows and cost counters) to a plan
// optimized cold for the same query. The corpus is the same 40-query
// workload `ledger run` executes, so all four shapes (range aggregate,
// date window, 2-way join, 3-way join) and their literal sweeps are
// covered; the sweep makes consecutive same-shape queries re-bind or
// reject rather than trivially hit.

import (
	"fmt"
	"testing"

	"robustqo/internal/colstore"
	"robustqo/internal/engine"
	"robustqo/internal/optimizer"
	"robustqo/internal/plancache"
	"robustqo/internal/sqlparse"
	"robustqo/internal/tpch"
)

// diffFixture builds a database, context, optimizer, and cache env for
// one (partitions, dop) configuration.
func diffFixture(t *testing.T, lines, partitions, dop int) (*engine.Context, *optimizer.Optimizer, plancache.Env) {
	t.Helper()
	db, err := tpch.Generate(tpch.Config{Lines: lines, Partitions: partitions, Seed: 2005})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		t.Fatal(err)
	}
	est, err := buildEstimator(db, "robust", 0.8, 500, 2005)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := optimizer.New(ctx, est)
	if err != nil {
		t.Fatal(err)
	}
	opt.MaxDOP = dop
	env := plancache.Env{
		Ctx: ctx,
		Est: est,
		DOP: dop,
		Optimize: func(q *optimizer.Query) (*optimizer.Plan, error) {
			return opt.Optimize(q)
		},
	}
	return ctx, opt, env
}

// runFingerprint executes a plan and renders its full observable output
// — schema, every row, and the cost counters — as one string.
func runFingerprint(t *testing.T, ctx *engine.Context, root engine.Node) string {
	t.Helper()
	res, counters, _, err := engine.Run(ctx, root)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%v|%v|%+v", res.Schema, res.Rows, counters)
}

func TestPlanCacheDifferentialCorpus(t *testing.T) {
	for _, cfg := range []struct {
		name              string
		partitions, lines int
		dop               int
	}{
		{"dop1", 1, 20000, 1},
		{"dop2", 1, 20000, 2},
		{"dop4-partitioned", 4, 20000, 4},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			ctx, opt, env := diffFixture(t, cfg.lines, cfg.partitions, cfg.dop)
			cache := plancache.New(256, nil)
			outcomes := map[plancache.Outcome]int{}
			for qi, sqlText := range corpusQueries() {
				qCold, err := sqlparse.Parse(sqlText)
				if err != nil {
					t.Fatalf("q%d parse: %v", qi, err)
				}
				qCached, err := sqlparse.Parse(sqlText)
				if err != nil {
					t.Fatal(err)
				}
				coldPlan, err := opt.Optimize(qCold)
				if err != nil {
					t.Fatalf("q%d cold optimize: %v", qi, err)
				}
				want := runFingerprint(t, ctx, coldPlan.Root)

				cachedPlan, outcome, err := cache.Plan(env, qCached)
				if err != nil {
					t.Fatalf("q%d cache: %v", qi, err)
				}
				outcomes[outcome]++
				got := runFingerprint(t, ctx, cachedPlan.Root)
				if got != want {
					t.Errorf("q%d (%s, outcome %v): cached plan diverges from cold plan\ncold:   %s\ncached: %s",
						qi, sqlText, outcome, want, got)
				}
			}
			// The literal sweep must actually exercise the cached paths:
			// with 4 shapes × 10 bindings, only 4 optimizations are misses
			// and the rest are hits/rebinds/rejects.
			if outcomes[plancache.Miss] != 4 {
				t.Errorf("outcomes %v: want exactly 4 misses (one per shape)", outcomes)
			}
			if outcomes[plancache.Hit]+outcomes[plancache.Rebind] == 0 {
				t.Errorf("outcomes %v: corpus never served a cached plan", outcomes)
			}
		})
	}
}

func TestPlanCacheInvalidationOnStatsRebuild(t *testing.T) {
	ctx, _, env := diffFixture(t, 4000, 1, 1)
	_ = ctx
	cache := plancache.New(64, nil)
	q := func() *optimizer.Query {
		p, err := sqlparse.Parse("SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 10")
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, out, err := cache.Plan(env, q()); err != nil || out != plancache.Miss {
		t.Fatalf("cold: %v %v", out, err)
	}
	if _, out, err := cache.Plan(env, q()); err != nil || out != plancache.Hit {
		t.Fatalf("warm: %v %v", out, err)
	}
	// A statistics rebuild (new synopses) invalidates every cached plan
	// even though the estimator name and layout are unchanged.
	cache.Invalidate()
	if _, out, err := cache.Plan(env, q()); err != nil || out != plancache.Miss {
		t.Fatalf("after stats rebuild: %v %v, want miss", out, err)
	}
}

// TestPlanCacheInvalidationOnReencode: cached plans embed a per-scan
// materialization mode chosen against a specific segment image, so both
// attaching encodings and rebuilding them must shift the layout key — a
// plan optimized against a stale (or absent) segment layout is never
// served.
func TestPlanCacheInvalidationOnReencode(t *testing.T) {
	ctx, _, env := diffFixture(t, 4000, 1, 1)
	cache := plancache.New(64, nil)
	q := func() *optimizer.Query {
		p, err := sqlparse.Parse("SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 10")
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, out, err := cache.Plan(env, q()); err != nil || out != plancache.Miss {
		t.Fatalf("row-path cold: %v %v", out, err)
	}
	// Attaching encodings changes the physical layout: the row-path entry
	// must not be served for the now-encoded database.
	encs, err := colstore.BuildAll(ctx.DB)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Encodings = encs
	if _, out, err := cache.Plan(env, q()); err != nil || out != plancache.Miss {
		t.Fatalf("encoded layout reused row-path plan: %v %v", out, err)
	}
	if _, out, err := cache.Plan(env, q()); err != nil || out != plancache.Hit {
		t.Fatalf("encoded warm: %v %v", out, err)
	}
	// Re-encoding bumps the set's generation; every cached key shifts.
	if err := encs.Rebuild(ctx.DB); err != nil {
		t.Fatal(err)
	}
	if _, out, err := cache.Plan(env, q()); err != nil || out != plancache.Miss {
		t.Fatalf("after re-encode: %v %v, want miss", out, err)
	}
	if _, out, err := cache.Plan(env, q()); err != nil || out != plancache.Hit {
		t.Fatalf("re-encoded warm: %v %v", out, err)
	}
}

func TestPlanCacheInvalidationOnPartitionChange(t *testing.T) {
	_, _, envFlat := diffFixture(t, 4000, 1, 1)
	_, _, envPart := diffFixture(t, 4000, 4, 1)
	cache := plancache.New(64, nil)
	q := func() *optimizer.Query {
		p, err := sqlparse.Parse("SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 10")
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, out, err := cache.Plan(envFlat, q()); err != nil || out != plancache.Miss {
		t.Fatalf("flat: %v %v", out, err)
	}
	// Re-partitioning changes the layout key: the flat entry must not be
	// served against the partitioned database.
	if _, out, err := cache.Plan(envPart, q()); err != nil || out != plancache.Miss {
		t.Fatalf("partitioned layout reused flat-layout plan: %v %v", out, err)
	}
	if _, out, err := cache.Plan(envPart, q()); err != nil || out != plancache.Hit {
		t.Fatalf("partitioned warm: %v %v", out, err)
	}
}
