package main

// Concurrency stress for the serve subcommand: many clients hammer
// /query with mixed confidence thresholds (re-running the optimizer and
// the parallel engine per request) while /metrics is scraped the whole
// time. The test asserts every request succeeds and the final counters
// add up; running under -race in CI is what makes it bite — it covers
// the shared quantile cache, the registry, and the Exchange worker
// pools all at once.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
)

func TestServeConcurrentQueries(t *testing.T) {
	// 25000 lineitem rows puts the fact table past the parallel cutoff,
	// so parallelism=2 plans real Exchange operators under load.
	s, err := newServer(25000, "robust", 0.8, 500, 2005, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	queries := []string{
		"SELECT l_id FROM lineitem WHERE l_shipdate BETWEEN DATE '1997-07-01' AND DATE '1997-09-30' LIMIT 5",
		"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 10",
		"SELECT COUNT(*) FROM lineitem, orders, part WHERE p_attr1 < 20",
	}
	thresholds := []string{"", "0.5", "0.8", "0.95"}
	const clients, reqsPerClient = 8, 6

	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < reqsPerClient; i++ {
				u := ts.URL + "/query?sql=" + url.QueryEscape(queries[(g+i)%len(queries)])
				if th := thresholds[(g+i)%len(thresholds)]; th != "" {
					u += "&threshold=" + th
				}
				if (g+i)%2 == 0 {
					u += "&analyze=1"
				}
				resp, err := http.Get(u)
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d req %d: code %d body %q", g, i, resp.StatusCode, body)
					return
				}
			}
		}(g)
	}

	// Scrape /metrics continuously until the clients finish.
	stop := make(chan struct{})
	scrapeDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				scrapeDone <- nil
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				scrapeDone <- err
				return
			}
			_, err = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if err != nil {
				scrapeDone <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				scrapeDone <- fmt.Errorf("metrics scrape: code %d", resp.StatusCode)
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	if err := <-scrapeDone; err != nil {
		t.Fatal(err)
	}

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("final metrics: code %d", code)
	}
	want := fmt.Sprintf("robustqo_queries_total %d", clients*reqsPerClient)
	if !strings.Contains(body, want) {
		t.Errorf("metrics missing %q:\n%s", want, body)
	}
	// The concurrent optimizer runs shared one posterior-quantile cache;
	// its exported totals must have survived the race intact.
	if !strings.Contains(body, "robustqo_quantile_cache_hits_total") {
		t.Errorf("metrics missing quantile cache counters:\n%s", body)
	}
}

// TestServeParallelJoinStress hammers a join query at parallelism 4: the
// lineitem scan is past the parallel cutoff, so the optimizer wraps the
// whole scan→hashjoin pipeline in one Exchange and every request runs
// the partitioned build and shared-table probe concurrently with its
// siblings. Under -race this covers the two-phase parallel build, the
// read-only probe sharing, and the hash-join metrics all at once.
func TestServeParallelJoinStress(t *testing.T) {
	s, err := newServer(25000, "robust", 0.8, 500, 2005, 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	joinSQL := "SELECT COUNT(*) FROM lineitem, part WHERE p_size < 30"
	const clients, reqsPerClient = 6, 4
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < reqsPerClient; i++ {
				u := ts.URL + "/query?sql=" + url.QueryEscape(joinSQL)
				if (g+i)%2 == 0 {
					u += "&analyze=1"
				}
				resp, err := http.Get(u)
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d req %d: code %d body %q", g, i, resp.StatusCode, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("final metrics: code %d", code)
	}
	want := fmt.Sprintf("robustqo_queries_total %d", clients*reqsPerClient)
	if !strings.Contains(body, want) {
		t.Errorf("metrics missing %q:\n%s", want, body)
	}
	// The engine's metering is wired into the server registry: every
	// request built a hash table, so the build counter must be exported.
	if !strings.Contains(body, "robustqo_hashjoin_builds_total") {
		t.Errorf("metrics missing hash-join build counters:\n%s", body)
	}
}
