package main

// The ledger subcommand drives the cardinality feedback ledger from the
// command line:
//
//	robustqo ledger run    run the built-in 40-query corpus, persist the
//	                       ledger (and optionally a slow-query log and
//	                       event log), and print the worst offenders
//	robustqo ledger top    print the top-N worst Q-error fingerprints of
//	                       a persisted ledger
//	robustqo ledger drift  print per-table drift summaries of a
//	                       persisted ledger
//
// The persisted file carries a format-version header (see
// internal/obs/ledger); top and drift refuse files written by a
// different format version instead of misreading them.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"robustqo/internal/core"
	"robustqo/internal/cost"
	"robustqo/internal/engine"
	"robustqo/internal/obs"
	"robustqo/internal/obs/ledger"
	"robustqo/internal/optimizer"
	"robustqo/internal/sample"
	"robustqo/internal/sqlparse"
	"robustqo/internal/tpch"
)

func runLedger(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("ledger: need a subcommand: run, top, or drift")
	}
	switch args[0] {
	case "run":
		return runLedgerRun(args[1:], out)
	case "top":
		return runLedgerTop(args[1:], out)
	case "drift":
		return runLedgerDrift(args[1:], out)
	default:
		return fmt.Errorf("ledger: unknown subcommand %q (want run, top, or drift)", args[0])
	}
}

// corpusQueries is the deterministic workload `ledger run` executes:
// forty SPJ queries cycling through four shapes — single-table range
// aggregate, date-window scan, two-way join, three-way join — with
// literals swept across magnitude bins so recurring predicate shapes
// accumulate feedback while distinct bins stay distinct fingerprints.
func corpusQueries() []string {
	months := []string{"01", "03", "05", "07", "09"}
	var qs []string
	for i := 0; i < 40; i++ {
		v := i / 4
		switch i % 4 {
		case 0:
			qs = append(qs, fmt.Sprintf(
				"SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < %d", 3+v*5))
		case 1:
			m := months[v%len(months)]
			qs = append(qs, fmt.Sprintf(
				"SELECT SUM(l_extendedprice) AS revenue FROM lineitem WHERE l_shipdate BETWEEN DATE '199%d-%s-01' AND DATE '199%d-%s-28'",
				3+v%5, m, 3+v%5, m))
		case 2:
			qs = append(qs, fmt.Sprintf(
				"SELECT COUNT(*) AS n FROM lineitem, orders WHERE o_totalprice < %d AND l_quantity >= %d",
				2000+v*9000, 10+v))
		case 3:
			qs = append(qs, fmt.Sprintf(
				"SELECT COUNT(*) AS n FROM lineitem, orders, part WHERE p_size < %d AND l_quantity < %d",
				5+v*4, 45-v*2))
		}
	}
	return qs
}

func runLedgerRun(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ledger run", flag.ContinueOnError)
	fs.SetOutput(out)
	lines := fs.Int("lines", 60000, "lineitem rows to generate")
	threshold := fs.Float64("threshold", 0.8, "confidence threshold in (0,1)")
	estimator := fs.String("estimator", "robust", "cardinality estimator: robust or histogram")
	sampleSize := fs.Int("samplesize", sample.DefaultSize, "synopsis tuples")
	seed := fs.Uint64("seed", 2005, "random seed")
	dop := fs.Int("parallelism", 1, "max degree of parallelism for eligible scans (1 = serial)")
	partitions := fs.Int("partitions", 1, "range-partition lineitem on l_shipdate into this many shards")
	outFile := fs.String("out", "ledger.bin", "persist the ledger to this file")
	maxEntries := fs.Int("max-entries", 0, "ledger entry bound (0 = default)")
	topN := fs.Int("n", 10, "print this many worst fingerprints after the run")
	slowLogFile := fs.String("slow-log", "", "append slow-query JSON lines to this file")
	slowMS := fs.Int("slow-query-ms", 100, "slow-query latency threshold in milliseconds")
	eventsFile := fs.String("events", "", "append query-lifecycle JSON lines to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("ledger run: unexpected arguments %v", fs.Args())
	}
	fmt.Fprintf(out, "generating TPC-H-like data (%d lineitem rows)...\n", *lines)
	db, err := tpch.Generate(tpch.Config{Lines: *lines, Partitions: *partitions, Seed: *seed})
	if err != nil {
		return err
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		return err
	}
	ctx.Metrics = obs.Default
	est, err := buildEstimator(db, *estimator, *threshold, *sampleSize, *seed)
	if err != nil {
		return err
	}
	led := ledger.New(*maxEntries)
	led.Metrics = obs.Default

	var events *obs.EventLog
	if *eventsFile != "" {
		fh, err := os.Create(*eventsFile)
		if err != nil {
			return err
		}
		defer fh.Close()
		events = obs.NewEventLog(fh)
		events.Now = time.Now
	}
	var slowMirror io.Writer
	if *slowLogFile != "" {
		fh, err := os.Create(*slowLogFile)
		if err != nil {
			return err
		}
		defer fh.Close()
		slowMirror = fh
	}
	slow := obs.NewSlowLog(0, slowMirror)
	active := obs.NewActiveQueries()

	queries := corpusQueries()
	for _, sqlText := range queries {
		if err := runLedgerQuery(ctx, est, *dop, sqlText, led, active, events, slow, *slowMS); err != nil {
			return fmt.Errorf("corpus query %q: %v", sqlText, err)
		}
	}
	fh, err := os.Create(*outFile)
	if err != nil {
		return err
	}
	if err := led.Save(fh); err != nil {
		fh.Close()
		return err
	}
	if err := fh.Close(); err != nil {
		return err
	}
	if events != nil {
		if err := events.Err(); err != nil {
			return err
		}
	}
	if err := slow.Err(); err != nil {
		return err
	}
	fmt.Fprintf(out, "ran %d queries; ledger has %d fingerprints (%d observations, %d dropped); saved to %s\n",
		len(queries), led.Len(), led.Ordinal(), led.Dropped(), *outFile)
	if n := len(slow.Recent()); n > 0 {
		fmt.Fprintf(out, "%d queries exceeded the %dms slow-query threshold\n", n, *slowMS)
	}
	fmt.Fprintf(out, "\nworst %d fingerprints by Q-error:\n", *topN)
	renderTop(out, led.TopQError(*topN))
	fmt.Fprintf(out, "\nper-table drift:\n")
	renderDrift(out, led.Drift())
	return nil
}

// runLedgerQuery optimizes and executes one corpus query with the full
// lifecycle instrumentation: event log, live registry, ledger feedback,
// and slow-query capture. It is the same lifecycle the serve subcommand
// drives per request.
func runLedgerQuery(ctx *engine.Context, est core.Estimator, dop int, sqlText string,
	led *ledger.Ledger, active *obs.ActiveQueries, events *obs.EventLog,
	slow *obs.SlowLog, slowMS int) error {
	q := active.Begin(sqlText)
	defer active.Done(q)
	start := time.Now()
	events.Emit(obs.Event{QueryID: q.ID, Event: "received", SQL: sqlText})
	q.SetPhase(obs.PhaseParse)
	query, err := sqlparse.Parse(sqlText)
	if err != nil {
		q.SetPhase(obs.PhaseFailed)
		return err
	}
	q.SetPhase(obs.PhaseOptimize)
	opt, err := optimizer.New(ctx, est)
	if err != nil {
		q.SetPhase(obs.PhaseFailed)
		return err
	}
	opt.MaxDOP = dop
	opt.Metrics = obs.Default
	plan, err := opt.Optimize(query)
	if err != nil {
		q.SetPhase(obs.PhaseFailed)
		return err
	}
	inst := engine.InstrumentOpts(plan.Root, engine.InstrumentOptions{
		EstimateOf: plan.EstimateOf,
		Ledger:     led,
		QueryID:    q.ID,
		Live:       q,
	})
	q.T = plan.Confidence()
	q.DOP = dop
	q.EstRows = plan.EstRows
	q.PartsPruned, q.PartsTotal = planPruning(inst, plan.EstimateOf)
	events.Emit(obs.Event{QueryID: q.ID, Event: "optimized", T: q.T, DOP: dop,
		EstRows: plan.EstRows, PartsPruned: q.PartsPruned, PartsTotal: q.PartsTotal,
		ElapsedUS: time.Since(start).Microseconds()})
	q.SetPhase(obs.PhaseExecute)
	var counters cost.Counters
	res, err := inst.Execute(ctx, &counters)
	if err != nil {
		q.SetPhase(obs.PhaseFailed)
		events.Emit(obs.Event{QueryID: q.ID, Event: "failed", Detail: err.Error()})
		return err
	}
	counters.Output += int64(len(res.Rows))
	q.SetPhase(obs.PhaseDone)
	elapsed := time.Since(start)
	obs.Default.Histogram("robustqo_query_latency_seconds", obs.LatencyBuckets).
		Observe(elapsed.Seconds())
	events.Emit(obs.Event{QueryID: q.ID, Event: "done",
		Rows: int64(len(res.Rows)), ElapsedUS: elapsed.Microseconds()})
	if elapsed >= time.Duration(slowMS)*time.Millisecond {
		slow.Record(obs.SlowQuery{
			QueryID:   q.ID,
			SQL:       sqlText,
			ElapsedUS: elapsed.Microseconds(),
			Analyze: engine.ExplainAnalyze(inst, engine.AnalyzeOptions{
				EstimateOf: plan.EstimateOf,
				Timings:    true,
				Totals:     &counters,
			}),
		})
	}
	return nil
}

// planPruning reports the widest pruned scan of the plan: the snapshot
// with the largest shard total. The instrumented tree doubles as the
// walkable plan shape — its Origin pointers key the estimate map.
func planPruning(root *engine.Instrumented, estOf func(engine.Node) (obs.EstimateSnapshot, bool)) (pruned, total int) {
	var walk func(n *engine.Instrumented)
	walk = func(n *engine.Instrumented) {
		if est, ok := estOf(n.Origin); ok && est.PartsTotal > total {
			pruned, total = est.PartsTotal-est.PartsScanned, est.PartsTotal
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(root)
	return pruned, total
}

func runLedgerTop(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ledger top", flag.ContinueOnError)
	fs.SetOutput(out)
	in := fs.String("in", "ledger.bin", "persisted ledger file")
	n := fs.Int("n", 10, "how many fingerprints to print (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	led, err := loadLedgerFile(*in)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d fingerprints, %d observations, %d dropped\n\n",
		led.Len(), led.Ordinal(), led.Dropped())
	renderTop(out, led.TopQError(*n))
	return nil
}

func runLedgerDrift(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ledger drift", flag.ContinueOnError)
	fs.SetOutput(out)
	in := fs.String("in", "ledger.bin", "persisted ledger file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	led, err := loadLedgerFile(*in)
	if err != nil {
		return err
	}
	renderDrift(out, led.Drift())
	return nil
}

func loadLedgerFile(path string) (*ledger.Ledger, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return ledger.Load(fh)
}

// renderTop prints worst-Q-error fingerprints as an aligned table.
func renderTop(out io.Writer, entries []ledger.Entry) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "maxQ\tgeoQ\tn\tover/under\tlast est\tlast act\tT\tfingerprint")
	for _, e := range entries {
		fmt.Fprintf(tw, "%.2f\t%.2f\t%d\t%d/%d\t%.1f\t%d\t%g\t%s\n",
			e.MaxQError, e.GeoMeanQError(), e.Count, e.OverCount, e.UnderCnt,
			e.LastEstRows, e.LastActual, e.LastPercentil, e.Fingerprint)
	}
	tw.Flush()
}

// renderDrift prints per-table drift summaries as an aligned table.
func renderDrift(out io.Writer, drifts []ledger.TableDrift) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "table\tfingerprints\tn\tgeoQ\tmaxQ\tover/under")
	for _, d := range drifts {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f\t%.2f\t%d/%d\n",
			d.Table, d.Fingerprints, d.Count, d.GeoMeanQ, d.MaxQ, d.OverCount, d.UnderCount)
	}
	tw.Flush()
}
