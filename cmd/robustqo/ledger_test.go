package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunLedgerCorpus drives the full subcommand surface: run the
// corpus, persist the ledger, re-read it with top and drift, and check
// the side logs.
func TestRunLedgerCorpus(t *testing.T) {
	dir := t.TempDir()
	ledgerFile := filepath.Join(dir, "ledger.bin")
	slowFile := filepath.Join(dir, "slow.jsonl")
	eventsFile := filepath.Join(dir, "events.jsonl")

	var buf strings.Builder
	err := run([]string{"ledger", "run",
		"-lines", "4000", "-out", ledgerFile, "-n", "5",
		"-slow-query-ms", "0", "-slow-log", slowFile, "-events", eventsFile,
	}, &buf)
	if err != nil {
		t.Fatalf("ledger run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"ran 40 queries", "worst 5 fingerprints", "per-table drift:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("run output missing %q:\n%s", want, out)
		}
	}

	// The persisted file round-trips; the full dump (-n 0) includes the
	// value-binned scan fingerprints the corpus must have produced.
	buf.Reset()
	if err := run([]string{"ledger", "top", "-in", ledgerFile, "-n", "0"}, &buf); err != nil {
		t.Fatalf("ledger top: %v", err)
	}
	if out := buf.String(); !strings.Contains(out, "observations") ||
		!strings.Contains(out, "lineitem|l_quantity<b") {
		t.Errorf("top output:\n%s", out)
	}

	buf.Reset()
	if err := run([]string{"ledger", "drift", "-in", ledgerFile}, &buf); err != nil {
		t.Fatalf("ledger drift: %v", err)
	}
	if out := buf.String(); !strings.Contains(out, "lineitem") {
		t.Errorf("drift output:\n%s", out)
	}

	// With a zero slow threshold every query is captured; each capture
	// carries a full EXPLAIN ANALYZE rendering.
	slow, err := os.ReadFile(slowFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(slow), `"analyze":"Aggregate`) {
		t.Errorf("slow log missing analyze capture:\n%.400s", slow)
	}
	events, err := os.ReadFile(eventsFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"event":"received"`, `"event":"optimized"`, `"event":"done"`, `"qid":"q40"`} {
		if !strings.Contains(string(events), want) {
			t.Errorf("event log missing %q", want)
		}
	}
}

// TestRunLedgerErrors pins the subcommand's failure modes, including
// the version-header refusal on a file that is not a persisted ledger.
func TestRunLedgerErrors(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"ledger"}, &buf); err == nil {
		t.Error("bare ledger: want error")
	}
	if err := run([]string{"ledger", "nope"}, &buf); err == nil {
		t.Error("unknown subcommand: want error")
	}
	if err := run([]string{"ledger", "top", "-in", filepath.Join(t.TempDir(), "absent.bin")}, &buf); err == nil {
		t.Error("missing file: want error")
	}
	garbage := filepath.Join(t.TempDir(), "garbage.bin")
	if err := os.WriteFile(garbage, []byte("not a ledger file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"ledger", "top", "-in", garbage}, &buf)
	if err == nil || !strings.Contains(err.Error(), "format-version header") {
		t.Errorf("garbage file: err = %v, want header refusal", err)
	}
}
