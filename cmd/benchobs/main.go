// Command benchobs measures the overhead the observability wrapper adds
// to streaming execution and records it in a small JSON report
// (BENCH_obs.json in CI). It runs the engine's full-drain
// scan→filter pipeline twice — bare and instrumented — taking the best
// of several testing.Benchmark repetitions, and exits nonzero when the
// instrumented run is more than -max-overhead slower: the wrapper is
// meant to be cheap enough to leave on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	"robustqo/internal/cost"
	"robustqo/internal/engine"
	"robustqo/internal/expr"
	"robustqo/internal/tpch"
)

// report is the schema of the JSON output.
type report struct {
	Benchmark        string   `json:"benchmark"`
	NumCPU           int      `json:"num_cpu"`
	Lines            int      `json:"lines"`
	Reps             int      `json:"reps"`
	PlainNsPerOp     float64  `json:"plain_ns_per_op"`
	InstrumentedNsOp float64  `json:"instrumented_ns_per_op"`
	OverheadFraction float64  `json:"overhead_fraction"`
	MaxOverhead      float64  `json:"max_overhead"`
	WaivedGates      []string `json:"waived_gates"`
}

func main() {
	out := flag.String("out", "BENCH_obs.json", "report file path")
	lines := flag.Int("lines", 20000, "lineitem rows to generate")
	reps := flag.Int("reps", 5, "benchmark repetitions (best-of)")
	maxOverhead := flag.Float64("max-overhead", 0.05, "fail when overhead exceeds this fraction")
	flag.Parse()
	if err := run(*out, *lines, *reps, *maxOverhead); err != nil {
		fmt.Fprintln(os.Stderr, "benchobs:", err)
		os.Exit(1)
	}
}

func run(out string, lines, reps int, maxOverhead float64) error {
	db, err := tpch.Generate(tpch.Config{Lines: lines, Seed: 2005})
	if err != nil {
		return err
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		return err
	}
	// Full-drain scan→filter: every row crosses the wrapper, so this is
	// the worst case for per-batch instrumentation overhead.
	plan := func() engine.Node {
		return &engine.Filter{
			Input: &engine.SeqScan{Table: "lineitem"},
			Pred:  expr.Cmp{Op: expr.GE, L: expr.C("l_quantity"), R: expr.IntLit(0)},
		}
	}
	measure := func(n engine.Node) (float64, error) {
		best := math.MaxFloat64
		for r := 0; r < reps; r++ {
			var execErr error
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var c cost.Counters
					if _, err := n.Execute(ctx, &c); err != nil {
						execErr = err
						b.FailNow()
					}
				}
			})
			if execErr != nil {
				return 0, execErr
			}
			if v := float64(res.NsPerOp()); v < best {
				best = v
			}
		}
		return best, nil
	}
	plain, err := measure(plan())
	if err != nil {
		return err
	}
	instrumented, err := measure(engine.Instrument(plan()))
	if err != nil {
		return err
	}
	rep := report{
		Benchmark:        "ExecStream fulldrain scan+filter",
		NumCPU:           runtime.NumCPU(),
		WaivedGates:      []string{},
		Lines:            lines,
		Reps:             reps,
		PlainNsPerOp:     plain,
		InstrumentedNsOp: instrumented,
		OverheadFraction: instrumented/plain - 1,
		MaxOverhead:      maxOverhead,
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("plain %.0f ns/op, instrumented %.0f ns/op, overhead %.2f%% (report: %s)\n",
		plain, instrumented, rep.OverheadFraction*100, out)
	if rep.OverheadFraction > maxOverhead {
		return fmt.Errorf("instrumentation overhead %.2f%% exceeds the %.0f%% budget",
			rep.OverheadFraction*100, maxOverhead*100)
	}
	return nil
}
