// Command benchobs measures the overhead the observability wrapper adds
// to streaming execution and records it in a small JSON report
// (BENCH_obs.json in CI). It runs the engine's full-drain
// scan→filter pipeline three times — bare, instrumented, and
// instrumented with cardinality-feedback ledger appends — taking the
// best of several testing.Benchmark repetitions, and exits nonzero when
// the total (instrumentation + ledger) run is more than -max-overhead
// slower than bare: the whole lifecycle pipeline is meant to be cheap
// enough to leave on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	"robustqo/internal/cost"
	"robustqo/internal/engine"
	"robustqo/internal/expr"
	"robustqo/internal/obs"
	"robustqo/internal/obs/ledger"
	"robustqo/internal/tpch"
)

// report is the schema of the JSON output. OverheadFraction is the
// wrapper alone over bare; LedgerOverheadFraction is the ledger appends
// over the wrapper; TotalOverheadFraction (the gated number) is the full
// pipeline over bare.
type report struct {
	Benchmark          string   `json:"benchmark"`
	NumCPU             int      `json:"num_cpu"`
	Lines              int      `json:"lines"`
	Reps               int      `json:"reps"`
	PlainNsPerOp       float64  `json:"plain_ns_per_op"`
	InstrumentedNsOp   float64  `json:"instrumented_ns_per_op"`
	LedgerNsPerOp      float64  `json:"ledger_ns_per_op"`
	OverheadFraction   float64  `json:"overhead_fraction"`
	LedgerOverheadFrac float64  `json:"ledger_overhead_fraction"`
	TotalOverheadFrac  float64  `json:"total_overhead_fraction"`
	MaxOverhead        float64  `json:"max_overhead"`
	WaivedGates        []string `json:"waived_gates"`
}

func main() {
	out := flag.String("out", "BENCH_obs.json", "report file path")
	lines := flag.Int("lines", 20000, "lineitem rows to generate")
	reps := flag.Int("reps", 5, "benchmark repetitions (best-of)")
	maxOverhead := flag.Float64("max-overhead", 0.05, "fail when overhead exceeds this fraction")
	flag.Parse()
	if err := run(*out, *lines, *reps, *maxOverhead); err != nil {
		fmt.Fprintln(os.Stderr, "benchobs:", err)
		os.Exit(1)
	}
}

func run(out string, lines, reps int, maxOverhead float64) error {
	db, err := tpch.Generate(tpch.Config{Lines: lines, Seed: 2005})
	if err != nil {
		return err
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		return err
	}
	// Full-drain scan→filter: every row crosses the wrapper, so this is
	// the worst case for per-batch instrumentation overhead.
	plan := func() engine.Node {
		return &engine.Filter{
			Input: &engine.SeqScan{Table: "lineitem"},
			Pred:  expr.Cmp{Op: expr.GE, L: expr.C("l_quantity"), R: expr.IntLit(0)},
		}
	}
	measure := func(n engine.Node) (float64, error) {
		best := math.MaxFloat64
		for r := 0; r < reps; r++ {
			var execErr error
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var c cost.Counters
					if _, err := n.Execute(ctx, &c); err != nil {
						execErr = err
						b.FailNow()
					}
				}
			})
			if execErr != nil {
				return 0, execErr
			}
			if v := float64(res.NsPerOp()); v < best {
				best = v
			}
		}
		return best, nil
	}
	plain, err := measure(plan())
	if err != nil {
		return err
	}
	instrumented, err := measure(engine.Instrument(plan()))
	if err != nil {
		return err
	}
	ledgered, err := measure(ledgerPlan(plan(), lines))
	if err != nil {
		return err
	}
	rep := report{
		Benchmark:          "ExecStream fulldrain scan+filter",
		NumCPU:             runtime.NumCPU(),
		WaivedGates:        []string{},
		Lines:              lines,
		Reps:               reps,
		PlainNsPerOp:       plain,
		InstrumentedNsOp:   instrumented,
		LedgerNsPerOp:      ledgered,
		OverheadFraction:   instrumented/plain - 1,
		LedgerOverheadFrac: ledgered/instrumented - 1,
		TotalOverheadFrac:  ledgered/plain - 1,
		MaxOverhead:        maxOverhead,
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("plain %.0f ns/op, instrumented %.0f ns/op (+%.2f%%), with ledger %.0f ns/op (+%.2f%%), total overhead %.2f%% (report: %s)\n",
		plain, instrumented, rep.OverheadFraction*100,
		ledgered, rep.LedgerOverheadFrac*100, rep.TotalOverheadFrac*100, out)
	if rep.TotalOverheadFrac > maxOverhead {
		return fmt.Errorf("total instrumentation overhead %.2f%% exceeds the %.0f%% budget",
			rep.TotalOverheadFrac*100, maxOverhead*100)
	}
	return nil
}

// ledgerPlan wraps the pipeline with the full lifecycle options: every
// node carries a fingerprinted estimate, so each execution appends one
// ledger observation per operator — the per-query ledger cost in its
// entirety, measured on top of the wrapper cost.
func ledgerPlan(root engine.Node, lines int) *engine.Instrumented {
	snaps := map[engine.Node]obs.EstimateSnapshot{
		root: {Rows: float64(lines), Percentile: 0.8, Fingerprint: "lineitem|l_quantity>=b0"},
	}
	if f, ok := root.(*engine.Filter); ok {
		snaps[f.Input] = obs.EstimateSnapshot{Rows: float64(lines), Percentile: 0.8, Fingerprint: "lineitem"}
	}
	led := ledger.New(0)
	live := &obs.QueryLive{ID: "bench", EstRows: float64(lines)}
	return engine.InstrumentOpts(root, engine.InstrumentOptions{
		EstimateOf: func(n engine.Node) (obs.EstimateSnapshot, bool) {
			s, ok := snaps[n]
			return s, ok
		},
		Ledger:  led,
		QueryID: "bench",
		Live:    live,
	})
}
