// Command benchshard gates what table partitioning must deliver and
// what it must not change. Against a TPC-H-like lineitem range-sharded
// on l_shipdate it checks that an equality predicate on the partition
// key plans a scan of exactly one shard (EXPLAIN ANALYZE's
// "partitions: 1/N"), that the executed scan charges exactly the
// surviving shard's pages and tuples — zero accesses against pruned
// shards — and that the pruned posterior estimate is no larger than
// the unpruned one at the same confidence threshold. It then drains a
// pruned scatter-gather scan at DOP 1, 2, and 4 and requires
// byte-identical rows and cost counters at every DOP. Results land in
// a JSON report (BENCH_shard.json in CI). The DOP-4 speedup gate only
// bites on machines with at least 4 CPUs; every other gate bites
// everywhere.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"

	"robustqo/internal/core"
	"robustqo/internal/cost"
	"robustqo/internal/engine"
	"robustqo/internal/expr"
	"robustqo/internal/optimizer"
	"robustqo/internal/sample"
	"robustqo/internal/sqlparse"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/tpch"
	"robustqo/internal/value"
)

type report struct {
	NumCPU int `json:"num_cpu"`
	Lines  int `json:"lines"`
	Shards int `json:"shards"`
	Reps   int `json:"reps"`

	// Pruning effectiveness: the equality query's planned shard list,
	// the EXPLAIN ANALYZE annotation, and the executed page accounting
	// of the pruned scan versus the surviving shard's exact span.
	EqualityShard     int    `json:"equality_shard"`
	PartsAnnotation   string `json:"parts_annotation"`
	ShardPages        int64  `json:"shard_pages"`
	TablePages        int    `json:"table_pages"`
	PrunedSeqPages    int64  `json:"pruned_seq_pages"`
	PrunedTuples      int64  `json:"pruned_tuples"`
	ShardTuples       int64  `json:"shard_tuples"`
	ExactPageAccounts bool   `json:"exact_page_accounting"`

	// Posterior tightening: pruning drops shards before the quantile,
	// so the pruned estimate can only shrink.
	UnprunedEstRows float64 `json:"unpruned_est_rows"`
	PrunedEstRows   float64 `json:"pruned_est_rows"`

	// Scatter-gather identity and timing of a pruned scan.
	DOPRows           int      `json:"dop_rows"`
	IdenticalRows     bool     `json:"identical_rows"`
	IdenticalCounters bool     `json:"identical_counters"`
	SerialNsPerOp     float64  `json:"serial_ns_per_op"`
	DOP2NsPerOp       float64  `json:"dop2_ns_per_op"`
	DOP4NsPerOp       float64  `json:"dop4_ns_per_op"`
	SpeedupDOP2       float64  `json:"speedup_dop2"`
	SpeedupDOP4       float64  `json:"speedup_dop4"`
	MinSpeedup        float64  `json:"min_speedup"`
	SpeedupEnforced   bool     `json:"speedup_enforced"`
	SpeedupWaiver     string   `json:"speedup_waiver,omitempty"`
	WaivedGates       []string `json:"waived_gates"`
}

func main() {
	out := flag.String("out", "BENCH_shard.json", "report file path")
	lines := flag.Int("lines", 60000, "lineitem rows to generate")
	shards := flag.Int("shards", 4, "lineitem range shards on l_shipdate")
	reps := flag.Int("reps", 3, "benchmark repetitions (best-of)")
	minSpeedup := flag.Float64("min-speedup", 1.4, "fail when the pruned-scan DOP=4 speedup is below this (needs >=4 CPUs)")
	flag.Parse()
	if err := run(*out, *lines, *shards, *reps, *minSpeedup); err != nil {
		fmt.Fprintln(os.Stderr, "benchshard:", err)
		os.Exit(1)
	}
}

func run(out string, lines, shards, reps int, minSpeedup float64) error {
	if shards < 2 {
		return fmt.Errorf("need at least 2 shards to measure pruning, got %d", shards)
	}
	db, err := tpch.Generate(tpch.Config{Lines: lines, Partitions: shards, Seed: 2005})
	if err != nil {
		return err
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		return err
	}
	line, _ := db.Table("lineitem")
	rep := report{
		NumCPU:      runtime.NumCPU(),
		Lines:       lines,
		Shards:      shards,
		Reps:        reps,
		TablePages:  line.NumPages(),
		MinSpeedup:  minSpeedup,
		WaivedGates: []string{},
	}

	syn, err := sample.BuildAll(db, sample.DefaultSize, stats.NewRNG(2005^0x5a4d))
	if err != nil {
		return err
	}
	est, err := core.NewBayesEstimator(syn, core.ConfidenceThreshold(0.8))
	if err != nil {
		return err
	}

	if err := pruningGates(ctx, db, est, &rep); err != nil {
		return err
	}
	if err := dopGates(ctx, line, reps, &rep); err != nil {
		return err
	}

	rep.SpeedupEnforced = rep.NumCPU >= 4
	if !rep.SpeedupEnforced {
		rep.SpeedupWaiver = fmt.Sprintf("only %d CPUs; a DOP=4 wall-clock gate needs at least 4", rep.NumCPU)
		rep.WaivedGates = append(rep.WaivedGates, "dop4_speedup")
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("pruning: shard %d of %d, %d/%d pages, %s\n",
		rep.EqualityShard, shards, rep.ShardPages, rep.TablePages, rep.PartsAnnotation)
	fmt.Printf("estimate: %.1f rows pruned vs %.1f unpruned\n", rep.PrunedEstRows, rep.UnprunedEstRows)
	fmt.Printf("pruned scan: %.0f ns serial, speedup %.2fx @2, %.2fx @4; report: %s\n",
		rep.SerialNsPerOp, rep.SpeedupDOP2, rep.SpeedupDOP4, out)

	if !rep.ExactPageAccounts {
		return fmt.Errorf("pruned scan charged %d pages / %d tuples, the surviving shard spans %d pages / %d tuples",
			rep.PrunedSeqPages, rep.PrunedTuples, rep.ShardPages, rep.ShardTuples)
	}
	if rep.PrunedEstRows > rep.UnprunedEstRows {
		return fmt.Errorf("pruned estimate %.2f rows exceeds unpruned %.2f", rep.PrunedEstRows, rep.UnprunedEstRows)
	}
	if !rep.IdenticalRows {
		return fmt.Errorf("pruned scatter-gather rows diverge across DOP")
	}
	if !rep.IdenticalCounters {
		return fmt.Errorf("pruned scatter-gather counters diverge across DOP")
	}
	if rep.SpeedupEnforced && rep.SpeedupDOP4 < minSpeedup {
		return fmt.Errorf("pruned-scan DOP=4 speedup %.2fx below the %.1fx floor", rep.SpeedupDOP4, minSpeedup)
	}
	return nil
}

// pruningGates plans and runs the equality-on-partition-key query: the
// optimizer must restrict the scan to the key's single shard, EXPLAIN
// ANALYZE must say so, the executed scan must charge exactly that
// shard's pages, and the pruned posterior must not exceed the unpruned.
func pruningGates(ctx *engine.Context, db *storage.Database, est core.Estimator, rep *report) error {
	key := value.DateFromCivil(1995, 6, 15)
	line, _ := db.Table("lineitem")
	shard, ok := line.ShardOfKey(int64(key))
	if !ok {
		return fmt.Errorf("lineitem is not partitioned for key routing")
	}
	rep.EqualityShard = shard

	q, err := sqlparse.Parse("SELECT COUNT(*) FROM lineitem WHERE l_shipdate = DATE '1995-06-15'")
	if err != nil {
		return err
	}
	opt, err := optimizer.New(ctx, est)
	if err != nil {
		return err
	}
	plan, err := opt.Optimize(q)
	if err != nil {
		return err
	}
	inst := engine.Instrument(plan.Root)
	parts, found := scanPartitions(inst)
	if !found {
		return fmt.Errorf("no lineitem scan in the equality plan:\n%s", plan.Explain())
	}
	if len(parts) != 1 || parts[0] != shard {
		return fmt.Errorf("equality plan scans partitions %v, want exactly [%d]", parts, shard)
	}
	var pc cost.Counters
	if _, err := inst.Execute(ctx, &pc); err != nil {
		return err
	}
	explain := engine.ExplainAnalyze(inst, engine.AnalyzeOptions{EstimateOf: plan.EstimateOf})
	rep.PartsAnnotation = fmt.Sprintf("partitions: 1/%d", rep.Shards)
	if !strings.Contains(explain, rep.PartsAnnotation) {
		return fmt.Errorf("EXPLAIN ANALYZE lacks %q:\n%s", rep.PartsAnnotation, explain)
	}

	// Exact page accounting on a sequential scan of the pruned shard:
	// the counters must equal the shard span's first-tuple page charge —
	// any access to a pruned shard would break the identity.
	lo, hi := line.PartitionSpan(shard)
	const per = storage.TuplesPerPage
	rep.ShardPages = int64((hi+per-1)/per - (lo+per-1)/per)
	rep.ShardTuples = int64(hi - lo)
	pred := expr.Cmp{Op: expr.EQ, L: expr.TC("lineitem", "l_shipdate"), R: expr.DateLit(int64(key))}
	pruned, ok := line.PrunePartitions("l_shipdate", int64(key), int64(key))
	if !ok || len(pruned) != 1 || pruned[0] != shard {
		return fmt.Errorf("PrunePartitions(l_shipdate, =%d) = %v, %v; want [%d]", key, pruned, ok, shard)
	}
	var sc cost.Counters
	seq := &engine.SeqScan{Table: "lineitem", Filter: pred, Partitions: pruned}
	if _, err := seq.Execute(ctx, &sc); err != nil {
		return err
	}
	rep.PrunedSeqPages, rep.PrunedTuples = sc.SeqPages, sc.Tuples
	rep.ExactPageAccounts = sc.SeqPages == rep.ShardPages && sc.Tuples == rep.ShardTuples

	// The unpruned leg lists every shard explicitly so both estimates
	// combine the same per-shard posteriors — the only difference is the
	// shards pruning dropped. (Partitions=nil would use the separately
	// sampled global synopsis, which is not an ordering comparison.)
	all := make([]int, line.Partitions())
	for i := range all {
		all[i] = i
	}
	unpruned, err := est.Estimate(core.Request{Tables: []string{"lineitem"}, Pred: pred, Partitions: all})
	if err != nil {
		return err
	}
	shardOnly, err := est.Estimate(core.Request{Tables: []string{"lineitem"}, Pred: pred, Partitions: pruned})
	if err != nil {
		return err
	}
	rep.UnprunedEstRows, rep.PrunedEstRows = unpruned.Rows, shardOnly.Rows
	return nil
}

// dopGates drains a pruned scatter-gather scan — a two-shard date
// window with the matching partition list — at DOP 1, 2, and 4,
// requiring identical rows and counters, then times each DOP
// best-of-reps.
func dopGates(ctx *engine.Context, line *storage.Table, reps int, rep *report) error {
	lo := value.DateFromCivil(1994, 1, 1)
	hi := value.DateFromCivil(1996, 12, 31)
	parts, ok := line.PrunePartitions("l_shipdate", int64(lo), int64(hi))
	if !ok || len(parts) == 0 || len(parts) >= rep.Shards {
		return fmt.Errorf("window pruning kept %v of %d shards; want a proper non-empty subset", parts, rep.Shards)
	}
	pred := expr.Between{
		E:  expr.TC("lineitem", "l_shipdate"),
		Lo: expr.DateLit(int64(lo)),
		Hi: expr.DateLit(int64(hi)),
	}
	plan := func(dop int) engine.Node {
		var n engine.Node = &engine.SeqScan{Table: "lineitem", Filter: pred, Partitions: parts}
		if dop > 1 {
			n = &engine.Exchange{Source: n, DOP: dop}
		}
		return n
	}

	rep.IdenticalRows, rep.IdenticalCounters = true, true
	var baseHash uint64
	var baseCounters cost.Counters
	for i, dop := range []int{1, 2, 4} {
		var c cost.Counters
		res, err := plan(dop).Execute(ctx, &c)
		if err != nil {
			return fmt.Errorf("pruned scan dop=%d: %v", dop, err)
		}
		h := fnv.New64a()
		for _, r := range res.Rows {
			for _, v := range r {
				fmt.Fprint(h, v.String(), "\x1f")
			}
			fmt.Fprint(h, "\x1e")
		}
		if i == 0 {
			baseHash, baseCounters, rep.DOPRows = h.Sum64(), c, len(res.Rows)
			continue
		}
		if h.Sum64() != baseHash {
			rep.IdenticalRows = false
		}
		if c != baseCounters {
			rep.IdenticalCounters = false
		}
	}

	times := make([]float64, 3)
	for i, dop := range []int{1, 2, 4} {
		n := plan(dop)
		best := math.MaxFloat64
		for r := 0; r < reps; r++ {
			var execErr error
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var c cost.Counters
					if _, err := n.Execute(ctx, &c); err != nil {
						execErr = err
						b.FailNow()
					}
				}
			})
			if execErr != nil {
				return execErr
			}
			if v := float64(res.NsPerOp()); v < best {
				best = v
			}
		}
		times[i] = best
	}
	rep.SerialNsPerOp, rep.DOP2NsPerOp, rep.DOP4NsPerOp = times[0], times[1], times[2]
	rep.SpeedupDOP2 = times[0] / times[1]
	rep.SpeedupDOP4 = times[0] / times[2]
	return nil
}

// scanPartitions finds the lineitem scan in an instrumented plan and
// returns its partition list.
func scanPartitions(n *engine.Instrumented) ([]int, bool) {
	switch s := n.Origin.(type) {
	case *engine.SeqScan:
		if s.Table == "lineitem" {
			return s.Partitions, true
		}
	case *engine.IndexRangeScan:
		if s.Table == "lineitem" {
			return s.Partitions, true
		}
	case *engine.IndexIntersect:
		if s.Table == "lineitem" {
			return s.Partitions, true
		}
	}
	for _, kid := range n.Kids {
		if parts, ok := scanPartitions(kid); ok {
			return parts, ok
		}
	}
	return nil, false
}
