// Command qolint runs the project's static-analysis suite (package
// robustqo/internal/lint) over the repository:
//
//	go run ./cmd/qolint ./...
//
// It prints one line per finding and exits nonzero when any invariant
// is violated. Use -analyzers to run a subset and -list to see the
// suite. Findings are suppressed in source with //qolint:allow-<name>
// comments; see DESIGN.md ("Machine-checked invariants").
package main

import (
	"flag"
	"fmt"
	"os"

	"robustqo/internal/lint"
)

func main() {
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := lint.Run(analyzers, ".", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "qolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
