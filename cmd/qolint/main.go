// Command qolint runs the project's static-analysis suite (package
// robustqo/internal/lint) over the repository:
//
//	go run ./cmd/qolint ./...
//
// It prints one line per finding and exits nonzero when any invariant
// is violated. Use -analyzers to run a subset, -list to see the suite,
// and -json to additionally write the findings as a JSON report ("-"
// for stdout) — written even when clean, so CI can always archive it.
// Findings are suppressed in source with //qolint:allow-<name>
// comments; see DESIGN.md ("Machine-checked invariants").
package main

import (
	"flag"
	"fmt"
	"os"

	"robustqo/internal/lint"
)

func main() {
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.String("json", "", "write findings as a JSON report to this file (\"-\" for stdout)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := lint.Run(analyzers, ".", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if *jsonOut != "" {
		if err := writeReport(*jsonOut, diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "qolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// writeReport writes the JSON report to path, or to stdout for "-". An
// empty findings list still produces a report (an empty array), so a
// clean run leaves an artifact behind.
func writeReport(path string, diags []lint.Diagnostic) error {
	if path == "-" {
		return lint.WriteJSON(os.Stdout, diags)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("qolint: %v", err)
	}
	if err := lint.WriteJSON(f, diags); err != nil {
		f.Close()
		return fmt.Errorf("qolint: %v", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("qolint: %v", err)
	}
	return nil
}
