// Command benchcolumnar gates what compressed columnar segments must
// deliver and what they must not change. Against a TPC-H-like lineitem
// laid out in ship-date order it checks that the encodings shrink the
// resident column data by at least 2x, that the optimizer plans a
// selective date-range query as a late-materialized encoded scan whose
// EXPLAIN ANALYZE reports the zone-map arithmetic ("segments: k/n
// skipped (late)"), that the encoded scan returns byte-identical rows
// and cost counters to the row path at every materialization mode and
// DOP 1/2/4, and that the late-materialized scan beats the row path by
// at least 2x wall-clock. Results land in a JSON report
// (BENCH_columnar.json in CI). The wall-clock gate only bites on
// machines with at least 4 CPUs; the compression and identity gates
// bite everywhere.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"

	"robustqo/internal/colstore"
	"robustqo/internal/core"
	"robustqo/internal/cost"
	"robustqo/internal/engine"
	"robustqo/internal/expr"
	"robustqo/internal/optimizer"
	"robustqo/internal/sample"
	"robustqo/internal/sqlparse"
	"robustqo/internal/stats"
	"robustqo/internal/tpch"
	"robustqo/internal/value"
)

type report struct {
	NumCPU int `json:"num_cpu"`
	Lines  int `json:"lines"`
	Reps   int `json:"reps"`

	// Compression: the encoded segments versus the raw column data they
	// replace, summed over every table.
	RawBytes         int64   `json:"raw_bytes"`
	EncodedBytes     int64   `json:"encoded_bytes"`
	CompressionRatio float64 `json:"compression_ratio"`
	MinCompression   float64 `json:"min_compression"`

	// Planning: the selective date-range query must come out as a
	// late-materialized encoded scan with most segments zone-skipped.
	SegsSkipped    int     `json:"segs_skipped"`
	SegsTotal      int     `json:"segs_total"`
	SegsAnnotation string  `json:"segs_annotation"`
	Strategy       string  `json:"strategy"`
	BoundedEstRows float64 `json:"bounded_est_rows"`
	UnboundEstRows float64 `json:"unbound_est_rows"`

	// Identity: rows and cost counters across materialization modes and
	// DOP 1/2/4 — the encoding is invisible to everything but the clock
	// and the resident bytes.
	MatchRows         int  `json:"match_rows"`
	IdenticalRows     bool `json:"identical_rows"`
	IdenticalCounters bool `json:"identical_counters"`

	// Wall clock: late-materialized encoded scan versus the row path on
	// the same selective predicate, best-of-reps.
	RowsNsPerOp     float64  `json:"rows_ns_per_op"`
	EagerNsPerOp    float64  `json:"eager_ns_per_op"`
	LateNsPerOp     float64  `json:"late_ns_per_op"`
	Speedup         float64  `json:"speedup"`
	MinSpeedup      float64  `json:"min_speedup"`
	SpeedupEnforced bool     `json:"speedup_enforced"`
	SpeedupWaiver   string   `json:"speedup_waiver,omitempty"`
	WaivedGates     []string `json:"waived_gates"`
}

func main() {
	out := flag.String("out", "BENCH_columnar.json", "report file path")
	lines := flag.Int("lines", 120000, "lineitem rows to generate")
	reps := flag.Int("reps", 3, "benchmark repetitions (best-of)")
	minSpeedup := flag.Float64("min-speedup", 2.0, "fail when the late-vs-rows selective-scan speedup is below this (needs >=4 CPUs)")
	minCompression := flag.Float64("min-compression", 2.0, "fail when raw/encoded falls below this")
	flag.Parse()
	if err := run(*out, *lines, *reps, *minSpeedup, *minCompression); err != nil {
		fmt.Fprintln(os.Stderr, "benchcolumnar:", err)
		os.Exit(1)
	}
}

// selectivePred is the gate query's WHERE clause: one quarter out of the
// ~6.6-year ship-date span. On date-clustered data the quarter lives in
// a handful of adjacent segments, so zone maps skip nearly everything.
func selectivePred() expr.Expr {
	return expr.Between{
		E:  expr.TC("lineitem", "l_shipdate"),
		Lo: expr.DateLit(value.DateFromCivil(1997, 7, 1)),
		Hi: expr.DateLit(value.DateFromCivil(1997, 9, 30)),
	}
}

func run(out string, lines, reps int, minSpeedup, minCompression float64) error {
	db, err := tpch.Generate(tpch.Config{Lines: lines, Seed: 2005, ClusterDates: true})
	if err != nil {
		return err
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		return err
	}
	encs, err := colstore.BuildAll(db)
	if err != nil {
		return err
	}
	ctx.Encodings = encs
	rep := report{
		NumCPU:         runtime.NumCPU(),
		Lines:          lines,
		Reps:           reps,
		RawBytes:       encs.RawBytes(),
		EncodedBytes:   encs.EncodedBytes(),
		MinCompression: minCompression,
		MinSpeedup:     minSpeedup,
		WaivedGates:    []string{},
	}
	rep.CompressionRatio = float64(rep.RawBytes) / float64(rep.EncodedBytes)

	syn, err := sample.BuildAll(db, sample.DefaultSize, stats.NewRNG(2005^0x5a4d))
	if err != nil {
		return err
	}
	est, err := core.NewBayesEstimator(syn, core.ConfidenceThreshold(0.8))
	if err != nil {
		return err
	}
	if err := planGates(ctx, est, &rep); err != nil {
		return err
	}
	if err := identityGates(ctx, &rep); err != nil {
		return err
	}
	if err := clockGates(ctx, reps, &rep); err != nil {
		return err
	}

	rep.SpeedupEnforced = rep.NumCPU >= 4
	if !rep.SpeedupEnforced {
		rep.SpeedupWaiver = fmt.Sprintf("only %d CPUs; the wall-clock gate needs at least 4", rep.NumCPU)
		rep.WaivedGates = append(rep.WaivedGates, "late_scan_speedup")
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("compression: %d -> %d bytes (%.1fx)\n", rep.RawBytes, rep.EncodedBytes, rep.CompressionRatio)
	fmt.Printf("zone maps: %s, estimate %.1f bounded vs %.1f unbounded\n",
		rep.SegsAnnotation, rep.BoundedEstRows, rep.UnboundEstRows)
	fmt.Printf("selective scan: %.0f ns rows, %.0f ns eager, %.0f ns late (%.2fx); report: %s\n",
		rep.RowsNsPerOp, rep.EagerNsPerOp, rep.LateNsPerOp, rep.Speedup, out)

	if rep.CompressionRatio < minCompression {
		return fmt.Errorf("compression %.2fx below the %.1fx floor", rep.CompressionRatio, minCompression)
	}
	if !rep.IdenticalRows {
		return fmt.Errorf("encoded scan rows diverge from the row path")
	}
	if !rep.IdenticalCounters {
		return fmt.Errorf("encoded scan counters diverge from the row path")
	}
	if rep.SpeedupEnforced && rep.Speedup < minSpeedup {
		return fmt.Errorf("late-scan speedup %.2fx below the %.1fx floor", rep.Speedup, minSpeedup)
	}
	return nil
}

// planGates optimizes the selective date-range aggregate with and
// without encodings: the encoded plan must be a late-materialized scan,
// EXPLAIN ANALYZE must carry the segment arithmetic, and the zone-map
// selectivity bound must only tighten the posterior estimate.
func planGates(ctx *engine.Context, est core.Estimator, rep *report) error {
	q := func() (*optimizer.Query, error) {
		return sqlparse.Parse("SELECT COUNT(*) AS n FROM lineitem WHERE l_shipdate BETWEEN DATE '1997-07-01' AND DATE '1997-09-30'")
	}
	opt, err := optimizer.New(ctx, est)
	if err != nil {
		return err
	}
	// Unbounded leg: same context, encodings detached.
	encs := ctx.Encodings
	ctx.Encodings = nil
	qFree, err := q()
	if err != nil {
		return err
	}
	free, err := opt.Optimize(qFree)
	if err != nil {
		return err
	}
	ctx.Encodings = encs
	qEnc, err := q()
	if err != nil {
		return err
	}
	plan, err := opt.Optimize(qEnc)
	if err != nil {
		return err
	}
	inst := engine.Instrument(plan.Root)
	scan, ok := findScan(inst)
	if !ok {
		return fmt.Errorf("no lineitem SeqScan in the encoded plan:\n%s", plan.Explain())
	}
	if scan.Mode != engine.ScanLate {
		return fmt.Errorf("encoded plan scans with mode %v, want late:\n%s", scan.Mode, plan.Explain())
	}
	snap, ok := plan.EstimateOf(scan)
	if !ok || snap.SegsTotal == 0 {
		return fmt.Errorf("encoded plan snapshot lacks segment arithmetic (%+v)", snap)
	}
	rep.SegsSkipped, rep.SegsTotal, rep.Strategy = snap.SegsSkipped, snap.SegsTotal, snap.Strategy
	rep.SegsAnnotation = fmt.Sprintf("segments: %d/%d skipped (%s)", snap.SegsSkipped, snap.SegsTotal, snap.Strategy)
	if snap.SegsSkipped == 0 {
		return fmt.Errorf("zone maps skipped no segments on date-clustered data (%s)", rep.SegsAnnotation)
	}
	var c cost.Counters
	if _, err := inst.Execute(ctx, &c); err != nil {
		return err
	}
	explain := engine.ExplainAnalyze(inst, engine.AnalyzeOptions{EstimateOf: plan.EstimateOf})
	if !strings.Contains(explain, rep.SegsAnnotation) {
		return fmt.Errorf("EXPLAIN ANALYZE lacks %q:\n%s", rep.SegsAnnotation, explain)
	}
	freeScan, ok := findScan(engine.Instrument(free.Root))
	if !ok {
		return fmt.Errorf("no lineitem SeqScan in the row-path plan:\n%s", free.Explain())
	}
	freeSnap, _ := free.EstimateOf(freeScan)
	rep.BoundedEstRows, rep.UnboundEstRows = snap.Rows, freeSnap.Rows
	if rep.BoundedEstRows > rep.UnboundEstRows {
		return fmt.Errorf("zone-bounded estimate %.2f rows exceeds unbounded %.2f", rep.BoundedEstRows, rep.UnboundEstRows)
	}
	return nil
}

// findScan locates the lineitem SeqScan in an instrumented plan.
func findScan(n *engine.Instrumented) (*engine.SeqScan, bool) {
	if s, ok := n.Origin.(*engine.SeqScan); ok && s.Table == "lineitem" {
		return s, true
	}
	for _, kid := range n.Kids {
		if s, ok := findScan(kid); ok {
			return s, ok
		}
	}
	return nil, false
}

// identityGates runs the selective scan at every materialization mode
// and DOP 1/2/4, requiring byte-identical rows and cost counters — the
// encoded paths charge exactly what the row path charges.
func identityGates(ctx *engine.Context, rep *report) error {
	pred := selectivePred()
	plan := func(mode engine.ScanMode, dop int) engine.Node {
		var n engine.Node = &engine.SeqScan{Table: "lineitem", Filter: pred, Mode: mode}
		if dop > 1 {
			n = &engine.Exchange{Source: n, DOP: dop}
		}
		return n
	}
	rep.IdenticalRows, rep.IdenticalCounters = true, true
	first := true
	var baseHash uint64
	var baseCounters cost.Counters
	for _, mode := range []engine.ScanMode{engine.ScanRows, engine.ScanEager, engine.ScanLate} {
		for _, dop := range []int{1, 2, 4} {
			var c cost.Counters
			res, err := plan(mode, dop).Execute(ctx, &c)
			if err != nil {
				return fmt.Errorf("scan mode=%v dop=%d: %v", mode, dop, err)
			}
			h := fnv.New64a()
			for _, r := range res.Rows {
				for _, v := range r {
					fmt.Fprint(h, v.String(), "\x1f")
				}
				fmt.Fprint(h, "\x1e")
			}
			if first {
				baseHash, baseCounters, rep.MatchRows = h.Sum64(), c, len(res.Rows)
				first = false
				continue
			}
			if h.Sum64() != baseHash {
				rep.IdenticalRows = false
			}
			if c != baseCounters {
				rep.IdenticalCounters = false
			}
		}
	}
	return nil
}

// clockGates times the selective scan per materialization mode,
// best-of-reps, serial — the speedup must come from skipping and late
// materialization alone, not parallelism.
func clockGates(ctx *engine.Context, reps int, rep *report) error {
	pred := selectivePred()
	times := make(map[engine.ScanMode]float64, 3)
	for _, mode := range []engine.ScanMode{engine.ScanRows, engine.ScanEager, engine.ScanLate} {
		n := &engine.SeqScan{Table: "lineitem", Filter: pred, Mode: mode}
		best := math.MaxFloat64
		for r := 0; r < reps; r++ {
			var execErr error
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var c cost.Counters
					if _, err := n.Execute(ctx, &c); err != nil {
						execErr = err
						b.FailNow()
					}
				}
			})
			if execErr != nil {
				return execErr
			}
			if v := float64(res.NsPerOp()); v < best {
				best = v
			}
		}
		times[mode] = best
	}
	rep.RowsNsPerOp = times[engine.ScanRows]
	rep.EagerNsPerOp = times[engine.ScanEager]
	rep.LateNsPerOp = times[engine.ScanLate]
	rep.Speedup = rep.RowsNsPerOp / rep.LateNsPerOp
	return nil
}
