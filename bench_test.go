package robustqo

// Benchmark harness: one benchmark per figure of the paper (Figures 1–12)
// plus the Section 6.1 overhead measurement and ablation benches for the
// design choices called out in DESIGN.md. Each figure bench regenerates
// its figure's data series and reports headline values from it as bench
// metrics; run the CLI (`go run ./cmd/robustqo experiment all`) for the
// full tables, and see EXPERIMENTS.md for recorded paper-vs-measured
// comparisons.

import (
	"testing"

	"robustqo/internal/analytic"
	"robustqo/internal/core"
	"robustqo/internal/experiments"
	"robustqo/internal/expr"
	"robustqo/internal/histogram"
	"robustqo/internal/sample"
	"robustqo/internal/stats"
	"robustqo/internal/testkit"
	"robustqo/internal/tpch"
)

// benchConfig keeps the real-system figure benches tractable per
// iteration while preserving every crossover (see DESIGN.md on scaling).
func benchConfig() experiments.SystemConfig {
	cfg := experiments.DefaultSystemConfig()
	cfg.Lines = 20000
	cfg.Parts = 10000
	cfg.FactRows = 60000
	cfg.Samples = 4
	return cfg
}

func findSeries(b *testing.B, figs []*experiments.Figure, fig, label string) experiments.Series {
	b.Helper()
	for _, f := range figs {
		if f.ID != fig {
			continue
		}
		for _, s := range f.Series {
			if s.Label == label {
				return s
			}
		}
	}
	b.Fatalf("series %s/%s not found", fig, label)
	return experiments.Series{}
}

func runFigure(b *testing.B, id string, cfg experiments.SystemConfig) []*experiments.Figure {
	b.Helper()
	var figs []*experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		figs, err = experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return figs
}

func BenchmarkFig1PlanCostCurves(b *testing.B) {
	figs := runFigure(b, "fig1", benchConfig())
	// Report the crossover implied by the two curves.
	p1, p2 := analytic.Figure1Plans()
	b.ReportMetric((p2.Fixed-p1.Fixed)/(p1.Slope-p2.Slope), "crossover-sel")
	_ = figs
}

func BenchmarkFig2CostPDF(b *testing.B) {
	runFigure(b, "fig2", benchConfig())
}

func BenchmarkFig3CostCDF(b *testing.B) {
	figs := runFigure(b, "fig3", benchConfig())
	_ = figs
}

func BenchmarkFig4PriorSensitivity(b *testing.B) {
	runFigure(b, "fig4", benchConfig())
}

func BenchmarkFig5ConfidenceThreshold(b *testing.B) {
	figs := runFigure(b, "fig5", benchConfig())
	t95 := findSeries(b, figs, "fig5", "T=95%")
	t5 := findSeries(b, figs, "fig5", "T=5%")
	b.ReportMetric(t95.Points[len(t95.Points)-1].Y, "T95-at-1pct-s")
	b.ReportMetric(t5.Points[0].Y, "T5-at-0-s")
}

func BenchmarkFig6TradeoffCurve(b *testing.B) {
	figs := runFigure(b, "fig6", benchConfig())
	t80 := findSeries(b, figs, "fig6", "T=80%")
	b.ReportMetric(t80.Points[0].X, "T80-mean-s")
	b.ReportMetric(t80.Points[0].Y, "T80-stddev-s")
}

func BenchmarkFig7SampleSize(b *testing.B) {
	figs := runFigure(b, "fig7", benchConfig())
	n500 := findSeries(b, figs, "fig7", "n=500")
	var sum float64
	for _, p := range n500.Points {
		sum += p.Y
	}
	b.ReportMetric(sum/float64(len(n500.Points)), "n500-mean-s")
}

func BenchmarkFig8HighCrossover(b *testing.B) {
	figs := runFigure(b, "fig8", benchConfig())
	_ = figs
	b.ReportMetric(analytic.HighCrossoverModel().Crossover(), "crossover-sel")
}

func BenchmarkFig9SingleTable(b *testing.B) {
	figs := runFigure(b, "fig9", benchConfig())
	t95 := findSeries(b, figs, "fig9b", "T=95%")
	t5 := findSeries(b, figs, "fig9b", "T=5%")
	hist := findSeries(b, figs, "fig9b", "Histograms")
	b.ReportMetric(t95.Points[0].Y, "T95-stddev-s")
	b.ReportMetric(t5.Points[0].Y, "T5-stddev-s")
	b.ReportMetric(hist.Points[0].X, "hist-mean-s")
}

func BenchmarkFig10ThreeTableJoin(b *testing.B) {
	figs := runFigure(b, "fig10", benchConfig())
	t95 := findSeries(b, figs, "fig10b", "T=95%")
	t5 := findSeries(b, figs, "fig10b", "T=5%")
	b.ReportMetric(t95.Points[0].Y, "T95-stddev-s")
	b.ReportMetric(t5.Points[0].Y, "T5-stddev-s")
}

func BenchmarkFig11StarJoin(b *testing.B) {
	cfg := benchConfig()
	cfg.FactRows = 100000 // semijoin-vs-cascade crossover needs scale
	figs := runFigure(b, "fig11", cfg)
	hist := findSeries(b, figs, "fig11a", "Histograms")
	b.ReportMetric(hist.Points[len(hist.Points)-1].Y, "hist-at-1pct-s")
}

func BenchmarkFig12SampleSizeReal(b *testing.B) {
	cfg := benchConfig()
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Exp4Figure(cfg, []int{50, 500})
		if err != nil {
			b.Fatal(err)
		}
	}
	n50 := findSeries(b, []*experiments.Figure{fig}, "fig12", "n=50")
	b.ReportMetric(n50.Points[0].Y, "n50-stddev-s")
}

func BenchmarkOverheadSampling(b *testing.B) {
	// Wall-clock time of one optimization under the robust estimator
	// (the Section 6.1 measurement; compare with BenchmarkOverheadHistogram).
	db, sess := overheadFixture(b, RobustSampling)
	q := overheadQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Explain(q); err != nil {
			b.Fatal(err)
		}
	}
	_ = db
}

func BenchmarkOverheadHistogram(b *testing.B) {
	db, sess := overheadFixture(b, HistogramAVI)
	q := overheadQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Explain(q); err != nil {
			b.Fatal(err)
		}
	}
	_ = db
}

func overheadQuery() *Query {
	return &Query{
		Tables: []string{"lineitem"},
		Pred:   tpch.Experiment1Query(60).Pred,
		Aggs:   []AggSpec{{Func: Sum, Arg: TableCol("lineitem", "l_extendedprice"), As: "rev"}},
	}
}

func overheadFixture(b *testing.B, kind EstimatorKind) (*Database, *Session) {
	b.Helper()
	store, err := tpch.Generate(tpch.Config{Lines: 20000, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	db := NewDatabase()
	for _, name := range store.Catalog.TableNames() {
		schema, _ := store.Catalog.Table(name)
		cp := *schema
		if err := db.CreateTable(&cp); err != nil {
			b.Fatal(err)
		}
		t := testkit.Table(store, name)
		for r := 0; r < t.NumRows(); r++ {
			if err := db.Insert(name, t.Row(r)); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := db.UpdateStatistics(StatsOptions{}); err != nil {
		b.Fatal(err)
	}
	sess, err := db.SessionWith(kind, Moderate, Jeffreys)
	if err != nil {
		b.Fatal(err)
	}
	return db, sess
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationPrior compares the Jeffreys and uniform priors across
// the analytical workload: the reported metric is the largest difference
// in expected execution time at any selectivity — near-zero, confirming
// Figure 4's "prior doesn't matter".
func BenchmarkAblationPrior(b *testing.B) {
	m := analytic.Paper51Model()
	var maxGap float64
	for i := 0; i < b.N; i++ {
		maxGap = 0
		for p := 0.0; p <= 0.01; p += 0.0005 {
			j, err := m.Evaluate(p, 500, core.Jeffreys, 0.8)
			if err != nil {
				b.Fatal(err)
			}
			u, err := m.Evaluate(p, 500, core.Uniform, 0.8)
			if err != nil {
				b.Fatal(err)
			}
			if d := abs(j.Mean - u.Mean); d > maxGap {
				maxGap = d
			}
		}
	}
	b.ReportMetric(maxGap, "max-mean-gap-s")
}

// BenchmarkAblationEstimatorRule compares the paper's quantile rule with
// the maximum-likelihood (k/n) and posterior-mean rules on the analytical
// workload at the thresholds where they differ most: the reported metrics
// are workload standard deviations, showing the quantile rule's variance
// control that the point rules cannot express.
func BenchmarkAblationEstimatorRule(b *testing.B) {
	m := analytic.Paper51Model()
	rules := []struct {
		name string
		est  func(k, n int) (float64, error)
	}{
		{"quantile95", func(k, n int) (float64, error) {
			return core.RobustSelectivity(k, n, core.Jeffreys, 0.95)
		}},
		{"ml", core.MLSelectivity},
		{"mean", func(k, n int) (float64, error) {
			return core.ExpectedSelectivity(k, n, core.Jeffreys)
		}},
	}
	const n = 500
	var sds [3]float64
	for i := 0; i < b.N; i++ {
		for ri, rule := range rules {
			// Decision cutoff under this rule.
			cutoff := -1
			for k := 0; k <= n; k++ {
				s, err := rule.est(k, n)
				if err != nil {
					b.Fatal(err)
				}
				if s <= m.Crossover() {
					cutoff = k
				} else {
					break
				}
			}
			var outs []analytic.Outcome
			for p := 0.0; p <= 0.01; p += 0.0005 {
				bin, err := stats.NewBinomial(n, p)
				if err != nil {
					b.Fatal(err)
				}
				riskyProb := bin.CDF(cutoff)
				cR := m.CostOf(analytic.RiskyPlan, p)
				cS := m.CostOf(analytic.StablePlan, p)
				mean := riskyProb*cR + (1-riskyProb)*cS
				second := riskyProb*cR*cR + (1-riskyProb)*cS*cS
				outs = append(outs, analytic.Outcome{Mean: mean, Variance: second - mean*mean})
			}
			_, sd := analytic.WorkloadSummary(outs)
			sds[ri] = sd
		}
	}
	b.ReportMetric(sds[0], "quantile95-sd-s")
	b.ReportMetric(sds[1], "ml-sd-s")
	b.ReportMetric(sds[2], "mean-sd-s")
}

// BenchmarkAblationJoinSynopses compares join-synopsis estimation against
// independent per-table samples combined with the independence
// assumption, on a star query whose dimension filters are correlated
// through the fact table: the reported metrics are mean absolute
// estimation errors (in rows), demonstrating why synopses are built over
// the join.
func BenchmarkAblationJoinSynopses(b *testing.B) {
	cfg := benchConfig()
	db, err := tpch.Generate(tpch.Config{Lines: cfg.Lines, Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	pred := tpch.Experiment1Predicate(40)
	truth, err := sample.ExactFraction(db, []string{"lineitem"}, pred)
	if err != nil {
		b.Fatal(err)
	}
	terms := expr.SplitConjuncts(pred)
	var synErr, aviErr float64
	rng := stats.NewRNG(3)
	for i := 0; i < b.N; i++ {
		synErr, aviErr = 0, 0
		const trials = 10
		for trial := 0; trial < trials; trial++ {
			syn, err := sample.BuildSynopsis(db, "lineitem", 500, rng.Split())
			if err != nil {
				b.Fatal(err)
			}
			// Joint estimate from the synopsis.
			k, err := syn.Count(pred)
			if err != nil {
				b.Fatal(err)
			}
			jointML := float64(k) / float64(syn.Size())
			synErr += abs(jointML - truth)
			// Independence: product of per-term marginals from the same
			// sample (what separate single-column samples would yield).
			prod := 1.0
			for _, term := range terms {
				kt, err := syn.Count(term)
				if err != nil {
					b.Fatal(err)
				}
				prod *= float64(kt) / float64(syn.Size())
			}
			aviErr += abs(prod - truth)
		}
		synErr /= trials
		aviErr /= trials
	}
	rows := float64(cfg.Lines)
	b.ReportMetric(synErr*rows, "synopsis-abs-err-rows")
	b.ReportMetric(aviErr*rows, "avi-abs-err-rows")
}

// BenchmarkBetaQuantile measures the posterior-quantile inversion at the
// heart of every estimate.
func BenchmarkBetaQuantile(b *testing.B) {
	d, err := core.Jeffreys.Posterior(7, 500)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Quantile(0.8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBetaCDF measures the regularized incomplete beta evaluation.
func BenchmarkBetaCDF(b *testing.B) {
	d, err := core.Jeffreys.Posterior(7, 500)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.CDF(0.02)
	}
}

// BenchmarkSynopsisCount measures predicate evaluation over a 500-tuple
// synopsis — the per-request cost of the robust estimator.
func BenchmarkSynopsisCount(b *testing.B) {
	db, err := tpch.Generate(tpch.Config{Lines: 20000, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	syn, err := sample.BuildSynopsis(db, "lineitem", 500, stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	pred := tpch.Experiment1Predicate(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := syn.Count(pred); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistogramEstimate measures the baseline's per-request cost for
// the same predicate.
func BenchmarkHistogramEstimate(b *testing.B) {
	db, err := tpch.Generate(tpch.Config{Lines: 20000, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	hists, err := histogram.BuildAll(db)
	if err != nil {
		b.Fatal(err)
	}
	pred := tpch.Experiment1Predicate(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		histogram.Estimate(hists, db.Catalog, []string{"lineitem"}, pred)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BenchmarkBetaQuantileBisectionOnly is the ablation partner of
// BenchmarkBetaQuantile: the same inversion by pure bisection. The
// Newton-accelerated version converges in a fraction of the iterations.
func BenchmarkBetaQuantileBisectionOnly(b *testing.B) {
	d, err := core.Jeffreys.Posterior(7, 500)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.QuantileBisect(0.8); err != nil {
			b.Fatal(err)
		}
	}
}
