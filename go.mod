module robustqo

go 1.22
