#!/bin/sh
# serve_smoke.sh boots `robustqo serve` with a deliberately tiny
# admission gate, then asserts over plain HTTP that (1) a repeated query
# is served from the plan cache, (2) a prepared statement round-trips
# through /prepare + /exec as a cache hit, (3) an overload burst is shed
# with the robustqo_admission_* counters visible in /metrics, and (4)
# SIGTERM drains gracefully and persists the feedback ledger.
set -eu

ADDR=${SERVE_SMOKE_ADDR:-localhost:6067}
TMP=$(mktemp -d)
cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/robustqo" ./cmd/robustqo
"$TMP/robustqo" serve -debug-addr "$ADDR" -lines 8000 \
    -admission-slots 1 -admission-queue 1 -admission-queue-timeout-ms 1 \
    -ledger-out "$TMP/ledger.bin" &
PID=$!

ready=0
for _ in $(seq 1 120); do
    if curl -fsS "http://$ADDR/" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.5
done
[ "$ready" = 1 ] || { echo "serve-smoke: server never became ready" >&2; exit 1; }

Q="http://$ADDR/query?sql=SELECT%20COUNT(*)%20AS%20n%20FROM%20lineitem%20WHERE%20l_quantity%20%3C%2010"
curl -fsS "$Q" | grep -q 'plan cache: miss' || { echo "serve-smoke: cold query was not a miss" >&2; exit 1; }
curl -fsS "$Q" | grep -q 'plan cache: hit' || { echo "serve-smoke: repeated query was not a hit" >&2; exit 1; }

STMT=$(curl -fsS "http://$ADDR/prepare?sql=SELECT%20COUNT(*)%20AS%20n%20FROM%20lineitem%20WHERE%20l_quantity%20%3C%2010" \
    | sed -n 's/.*"stmt":"\([^"]*\)".*/\1/p')
[ -n "$STMT" ] || { echo "serve-smoke: /prepare returned no statement id" >&2; exit 1; }
curl -fsS "http://$ADDR/exec?stmt=$STMT&args=10" | grep -q 'plan cache: hit' \
    || { echo "serve-smoke: prepared exec was not a cache hit" >&2; exit 1; }

# Overload burst against 1 slot + 1 queue seat: most requests must shed.
# The three-way join is slow enough to hold the slot while the burst
# lands.
J="http://$ADDR/query?sql=SELECT%20COUNT(*)%20AS%20n%20FROM%20lineitem,%20orders,%20part%20WHERE%20p_size%20%3C%2040%20AND%20l_quantity%20%3C%2045"
PIDS=""
for _ in $(seq 1 12); do
    curl -s -o /dev/null "$J" &
    PIDS="$PIDS $!"
done
wait $PIDS

METRICS=$(curl -fsS "http://$ADDR/metrics")
echo "$METRICS" | grep -Eq 'robustqo_plancache_hits_total [1-9]' \
    || { echo "serve-smoke: no plan-cache hits in /metrics" >&2; exit 1; }
echo "$METRICS" | grep -Eq 'robustqo_admission_(shed|timeouts)_total [1-9]' \
    || { echo "serve-smoke: overload burst recorded no shed/timeout counters" >&2; exit 1; }

# Graceful shutdown: SIGTERM drains and persists the ledger.
kill -TERM "$PID"
wait "$PID" || { echo "serve-smoke: server exited non-zero on SIGTERM" >&2; exit 1; }
PID=""
[ -s "$TMP/ledger.bin" ] || { echo "serve-smoke: shutdown did not persist the ledger" >&2; exit 1; }
echo "serve-smoke: plan-cache hits, prepared exec, shedding, and graceful drain all verified"
