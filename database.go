package robustqo

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"robustqo/internal/catalog"
	"robustqo/internal/core"
	"robustqo/internal/engine"
	"robustqo/internal/histogram"
	"robustqo/internal/optimizer"
	"robustqo/internal/sample"
	"robustqo/internal/sqlparse"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
)

// Database is an in-memory relational database with precomputed
// statistics and a robust cost-based optimizer.
//
// Concurrency: loading (CreateTable, Insert, UpdateStatistics,
// LoadStatistics) must happen-before querying and must not run
// concurrently with it. Once statistics are built, any number of
// sessions may optimize and execute queries concurrently — execution is
// read-only and sessions share only immutable state.
type Database struct {
	store *storage.Database

	ctxMu sync.Mutex
	ctx   *engine.Context // built lazily after data loads

	synopses   *sample.Set
	histograms *histogram.Collection
	sampleSize int
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{store: storage.NewDatabase(catalog.NewCatalog())}
}

// CreateTable validates and registers a table schema.
func (d *Database) CreateTable(s *TableSchema) error {
	_, err := d.store.CreateTable(s)
	d.ctx = nil
	return err
}

// Insert appends rows to the named table. Types must match the schema;
// primary keys must be unique; the call fails on the first bad row.
func (d *Database) Insert(table string, rows ...Row) error {
	t, ok := d.store.Table(table)
	if !ok {
		return fmt.Errorf("robustqo: unknown table %q", table)
	}
	for _, r := range rows {
		if err := t.Append(r); err != nil {
			return err
		}
	}
	d.ctx = nil // indexes must be rebuilt
	return nil
}

// NumRows returns the row count of a table.
func (d *Database) NumRows(table string) (int, error) {
	t, ok := d.store.Table(table)
	if !ok {
		return 0, fmt.Errorf("robustqo: unknown table %q", table)
	}
	return t.NumRows(), nil
}

// Validate checks schema validity (acyclic foreign keys referencing
// primary keys) and referential integrity of the loaded data.
func (d *Database) Validate() error { return d.store.Validate() }

// StatsOptions configures UpdateStatistics.
type StatsOptions struct {
	// SampleSize is the number of tuples per join synopsis (default 500,
	// the paper's choice).
	SampleSize int
	// HistogramBuckets is the per-column bucket count for the baseline
	// histograms (default 250, the paper's description of the commercial
	// system).
	HistogramBuckets int
	// Seed makes sampling reproducible; 0 means a fixed default.
	Seed uint64
}

// UpdateStatistics builds the precomputed statistics both estimators run
// on: join synopses for every table (the robust estimator's samples) and
// single-column equi-depth histograms (the conventional baseline). It is
// the analogue of the paper's UPDATE STATISTICS trigger and must be
// called after loading data and before opening sessions.
func (d *Database) UpdateStatistics(opts StatsOptions) error {
	if opts.SampleSize == 0 {
		opts.SampleSize = sample.DefaultSize
	}
	if opts.SampleSize < 0 {
		return fmt.Errorf("robustqo: negative sample size %d", opts.SampleSize)
	}
	if opts.HistogramBuckets == 0 {
		opts.HistogramBuckets = histogram.DefaultBuckets
	}
	if opts.Seed == 0 {
		opts.Seed = 0x5160D2005 // "SIGMOD 2005"
	}
	if err := d.store.Validate(); err != nil {
		return err
	}
	syn, err := sample.BuildAll(d.store, opts.SampleSize, stats.NewRNG(opts.Seed))
	if err != nil {
		return err
	}
	hists, err := histogram.BuildAllSized(d.store, opts.HistogramBuckets)
	if err != nil {
		return err
	}
	d.synopses = syn
	d.histograms = hists
	d.sampleSize = opts.SampleSize
	return nil
}

// context lazily (re)builds indexes; safe for concurrent callers.
func (d *Database) context() (*engine.Context, error) {
	d.ctxMu.Lock()
	defer d.ctxMu.Unlock()
	if d.ctx != nil {
		return d.ctx, nil
	}
	ctx, err := engine.NewContext(d.store)
	if err != nil {
		return nil, err
	}
	d.ctx = ctx
	return ctx, nil
}

// EstimatorKind selects the cardinality estimation technique a session
// uses.
type EstimatorKind int

const (
	// RobustSampling is the paper's estimator: Bayesian inference over
	// join synopses, condensed at the session's confidence threshold,
	// with magic-number fallback for expressions lacking synopses.
	RobustSampling EstimatorKind = iota
	// HistogramAVI is the conventional baseline: equi-depth histograms
	// combined under the attribute-value-independence assumption.
	HistogramAVI
)

// Session runs queries under one choice of estimator, confidence
// threshold, and prior. Sessions are cheap; statistics are shared.
type Session struct {
	db        *Database
	kind      EstimatorKind
	threshold ConfidenceThreshold
	prior     Prior
}

// Session opens a robust-estimation session at the given system-wide
// confidence threshold with the Jeffreys prior.
func (d *Database) Session(t ConfidenceThreshold) (*Session, error) {
	return d.SessionWith(RobustSampling, t, Jeffreys)
}

// SessionWith opens a session with full control over the estimation
// technique, threshold (ignored by HistogramAVI), and prior.
func (d *Database) SessionWith(kind EstimatorKind, t ConfidenceThreshold, prior Prior) (*Session, error) {
	if kind == RobustSampling {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if err := prior.Validate(); err != nil {
			return nil, err
		}
		if d.synopses == nil {
			return nil, fmt.Errorf("robustqo: call UpdateStatistics before opening a robust session")
		}
	}
	if kind == HistogramAVI && d.histograms == nil {
		return nil, fmt.Errorf("robustqo: call UpdateStatistics before opening a histogram session")
	}
	return &Session{db: d, kind: kind, threshold: t, prior: prior}, nil
}

// estimator materializes the session's (or an overridden) estimator.
func (s *Session) estimator(t ConfidenceThreshold) (core.Estimator, error) {
	switch s.kind {
	case RobustSampling:
		// The full degradation chain of Section 3.5: join synopses first;
		// per-table samples combined under independence when a synopsis
		// does not cover the expression; magic numbers as the last resort.
		bayes, err := core.NewBayesEstimator(s.db.synopses, t)
		if err != nil {
			return nil, err
		}
		bayes.Prior = s.prior
		indep := &core.IndependentSamplesEstimator{
			Samples:   s.db.synopses,
			Catalog:   s.db.store.Catalog,
			Prior:     s.prior,
			Threshold: t,
		}
		magic := &core.MagicEstimator{
			Selectivity: histogram.MagicOther,
			Catalog:     s.db.store.Catalog,
			RowsFor: func(table string) (int, bool) {
				tab, ok := s.db.store.Table(table)
				if !ok {
					return 0, false
				}
				return tab.NumRows(), true
			},
		}
		return &core.Chain{Estimators: []core.Estimator{bayes, indep, magic}}, nil
	case HistogramAVI:
		return core.NewHistogramEstimator(s.db.histograms, s.db.store.Catalog)
	default:
		return nil, fmt.Errorf("robustqo: unknown estimator kind %d", int(s.kind))
	}
}

// Result is a fully executed query result.
type Result struct {
	// Columns are the output column names.
	Columns []string
	// Rows are the result tuples.
	Rows []Row
	// Plan is the executed physical plan, rendered as a tree.
	Plan string
	// EstimatedSeconds is what the optimizer predicted the plan would
	// cost under the simulated cost model.
	EstimatedSeconds float64
	// SimulatedSeconds is the deterministic simulated execution time:
	// the cost model applied to the work the plan actually performed.
	SimulatedSeconds float64
}

// Query optimizes and executes q at the session's threshold.
func (s *Session) Query(q *Query) (*Result, error) {
	return s.QueryWithThreshold(q, s.threshold)
}

// QueryWithThreshold overrides the session threshold for one query — the
// paper's query-hint mechanism (Section 6.2.5). Histogram sessions ignore
// the threshold.
func (s *Session) QueryWithThreshold(q *Query, t ConfidenceThreshold) (*Result, error) {
	plan, ctx, err := s.plan(q, t)
	if err != nil {
		return nil, err
	}
	res, _, secs, err := engine.Run(ctx, plan.Root)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(res.Schema.Fields))
	for i, f := range res.Schema.Fields {
		if f.Table != "" {
			cols[i] = f.Table + "." + f.Column
		} else {
			cols[i] = f.Column
		}
	}
	return &Result{
		Columns:          cols,
		Rows:             res.Rows,
		Plan:             engine.Explain(plan.Root),
		EstimatedSeconds: plan.EstCost,
		SimulatedSeconds: secs,
	}, nil
}

// QuerySQL parses a SQL SELECT statement and executes it at the
// session's threshold.
func (s *Session) QuerySQL(sql string) (*Result, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.Query(q)
}

// Explain optimizes q and returns the chosen plan without executing it.
func (s *Session) Explain(q *Query) (string, error) {
	plan, _, err := s.plan(q, s.threshold)
	if err != nil {
		return "", err
	}
	return engine.Explain(plan.Root), nil
}

// EstimateRows returns the session's cardinality estimate for the
// foreign-key join of tables under pred — the estimation module called
// directly, for inspection and testing.
func (s *Session) EstimateRows(tables []string, pred Expr) (float64, error) {
	est, err := s.estimator(s.threshold)
	if err != nil {
		return 0, err
	}
	e, err := est.Estimate(core.Request{Tables: tables, Pred: pred})
	if err != nil {
		return 0, err
	}
	return e.Rows, nil
}

func (s *Session) plan(q *Query, t ConfidenceThreshold) (*optimizer.Plan, *engine.Context, error) {
	ctx, err := s.db.context()
	if err != nil {
		return nil, nil, err
	}
	est, err := s.estimator(t)
	if err != nil {
		return nil, nil, err
	}
	opt, err := optimizer.New(ctx, est)
	if err != nil {
		return nil, nil, err
	}
	plan, err := opt.Optimize(q)
	if err != nil {
		return nil, nil, err
	}
	return plan, ctx, nil
}

// statisticsWireVersion versions the combined statistics bundle format.
// Version 2 embeds the partition-aware synopsis set (per-shard synopses
// for partitioned tables); version-1 bundles are refused rather than
// misread.
const statisticsWireVersion = 2

// SaveStatistics serializes the database's precomputed statistics (join
// synopses and histograms) so a later process over the same schema can
// LoadStatistics instead of rescanning the data. UpdateStatistics must
// have run first.
func (d *Database) SaveStatistics(w io.Writer) error {
	if d.synopses == nil || d.histograms == nil {
		return fmt.Errorf("robustqo: no statistics to save; call UpdateStatistics first")
	}
	if err := binary.Write(w, binary.LittleEndian, int32(statisticsWireVersion)); err != nil {
		return err
	}
	if err := d.synopses.Save(w); err != nil {
		return err
	}
	return d.histograms.Save(w)
}

// LoadStatistics restores statistics written by SaveStatistics. The
// database must hold the same schema the statistics were built against;
// the synopses are validated structurally against the catalog.
func (d *Database) LoadStatistics(r io.Reader) error {
	var version int32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return fmt.Errorf("robustqo: reading statistics header: %v", err)
	}
	if version != statisticsWireVersion {
		return fmt.Errorf("robustqo: unsupported statistics version %d", version)
	}
	syn, err := sample.LoadSet(r, d.store.Catalog)
	if err != nil {
		return err
	}
	hists, err := histogram.LoadCollection(r)
	if err != nil {
		return err
	}
	d.synopses = syn
	d.histograms = hists
	return nil
}
